// Package storage implements the paged storage substrate under every
// access method in this repository: fixed-size pages, a slotted-page
// layout for variable-length records, and two page stores — an
// in-memory simulated disk that counts physical I/O (the metric the
// paper reports) and an os.File-backed store for durable files.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ccam/internal/metrics"
)

// PageID identifies a page within a store. Valid IDs start at 0.
type PageID uint32

// InvalidPageID is a sentinel for "no page".
const InvalidPageID = PageID(^uint32(0))

// Common storage errors.
var (
	ErrPageNotFound  = errors.New("storage: page not found")
	ErrPageFreed     = errors.New("storage: page was freed")
	ErrSizeMismatch  = errors.New("storage: buffer size does not match page size")
	ErrStoreClosed   = errors.New("storage: store is closed")
	ErrRecordTooBig  = errors.New("storage: record larger than page capacity")
	ErrPageFull      = errors.New("storage: page has insufficient free space")
	ErrSlotNotFound  = errors.New("storage: slot not found")
	ErrCorruptedPage = errors.New("storage: corrupted page")
	// ErrChecksum reports a page (or file header) whose stored CRC32
	// does not match its contents: a torn write, bit rot, or a
	// misdirected write. It is wrapped with page context by
	// CheckedStore and OpenFileStore and surfaced unchanged through
	// the buffer pool, netfile and the ccam facade, so callers can
	// errors.Is against it at any layer.
	ErrChecksum = errors.New("storage: page checksum mismatch")
	// ErrFaultInjected marks an error produced by a FaultStore rule
	// rather than a real device.
	ErrFaultInjected = errors.New("storage: injected fault")
)

// Stats counts physical page transfers. The paper's experiments report
// "number of data pages accessed"; Reads+Writes through a Store is that
// number before buffering, and the buffer pool reports the post-cache
// counts.
type Stats struct {
	Reads  int64 // pages read from the store
	Writes int64 // pages written to the store
	Allocs int64 // pages allocated
	Frees  int64 // pages freed
}

// Total returns Reads + Writes.
func (s Stats) Total() int64 { return s.Reads + s.Writes }

// String renders the counters on one line.
func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d allocs=%d frees=%d total=%d",
		s.Reads, s.Writes, s.Allocs, s.Frees, s.Total())
}

// ioCounters is the mutable form of Stats: each counter is a separate
// atomic so readers holding only a read latch (ReadPage) can account
// I/O without racing, and Stats() can load every field without
// tearing. Counters are monotonic between resets.
type ioCounters struct {
	reads, writes, allocs, frees atomic.Int64
}

// snapshot atomically loads every counter into a Stats value.
func (c *ioCounters) snapshot() Stats {
	return Stats{
		Reads:  c.reads.Load(),
		Writes: c.writes.Load(),
		Allocs: c.allocs.Load(),
		Frees:  c.frees.Load(),
	}
}

// reset zeroes every counter.
func (c *ioCounters) reset() {
	c.reads.Store(0)
	c.writes.Store(0)
	c.allocs.Store(0)
	c.frees.Store(0)
}

// Sub returns the change from an earlier snapshot.
func (s Stats) Sub(earlier Stats) Stats {
	return Stats{
		Reads:  s.Reads - earlier.Reads,
		Writes: s.Writes - earlier.Writes,
		Allocs: s.Allocs - earlier.Allocs,
		Frees:  s.Frees - earlier.Frees,
	}
}

// IOInstrumentation carries the optional latency histograms of a page
// store. Nil histograms are skipped, so partial instrumentation is
// fine.
type IOInstrumentation struct {
	// ReadNanos observes the wall-clock duration of each physical
	// page read (including any simulated device latency).
	ReadNanos *metrics.Histogram
	// WriteNanos observes the duration of each physical page write.
	WriteNanos *metrics.Histogram
}

// Instrumentable is the optional interface of stores that accept
// latency instrumentation. Both MemStore and FileStore implement it;
// callers type-assert so the Store interface stays minimal.
type Instrumentable interface {
	Instrument(in IOInstrumentation)
}

// ChecksumInstrumentable is the optional interface of stores that
// count checksum verification failures (CheckedStore). The counter is
// nil-safe, so wiring it unconditionally is fine.
type ChecksumInstrumentable interface {
	InstrumentChecksums(c *metrics.Counter)
}

// FaultInstrumentable is the optional interface of stores that count
// injected faults (FaultStore).
type FaultInstrumentable interface {
	InstrumentFaults(c *metrics.Counter)
}

// Store is a page-granular storage device. Implementations must be safe
// for concurrent use.
type Store interface {
	// PageSize returns the fixed page size in bytes.
	PageSize() int
	// Allocate reserves a new zeroed page and returns its ID.
	Allocate() (PageID, error)
	// ReadPage copies the page contents into buf, which must be exactly
	// PageSize bytes.
	ReadPage(id PageID, buf []byte) error
	// WritePage persists buf (exactly PageSize bytes) as the page
	// contents.
	WritePage(id PageID, buf []byte) error
	// Free releases a page. Freed IDs may be recycled by Allocate.
	Free(id PageID) error
	// NumPages returns the number of live (allocated, unfreed) pages.
	// After Close it returns the count snapshotted at Close — the same
	// last-snapshot semantics IO()-after-Close follows at the facade —
	// never the torn-down post-Close state.
	NumPages() int
	// PageIDs returns the ids of all live pages in ascending order.
	// After Close it returns the snapshot taken at Close.
	PageIDs() []PageID
	// Stats returns a snapshot of the I/O counters. Counters survive
	// Close, so Stats keeps answering on a closed store.
	Stats() Stats
	// ResetStats zeroes the I/O counters.
	ResetStats()
	// Close releases resources. Further page operations fail with
	// ErrStoreClosed; NumPages, PageIDs and Stats keep answering from
	// the Close-time snapshot.
	Close() error
}

// MemStore is an in-memory Store that simulates a disk while counting
// page transfers. It is the substrate for all experiments: the paper
// reports page-access counts, not wall-clock I/O, so an exact counter
// reproduces the metric.
//
// Concurrency: a reader-writer latch lets any number of ReadPage (and
// other non-mutating) calls run in parallel; Allocate, WritePage and
// Free are exclusive. The I/O counters are atomics so shared-latch
// readers account without racing.
type MemStore struct {
	mu       sync.RWMutex
	pageSize int
	pages    map[PageID][]byte
	free     []PageID
	next     PageID
	stats    ioCounters
	closed   bool
	// closedIDs snapshots the live page ids at Close, so NumPages and
	// PageIDs keep answering afterwards (see the Store interface).
	closedIDs []PageID
	// readLatency is the simulated seek+transfer time charged per
	// physical page read, in nanoseconds (atomic; 0 = instantaneous).
	readLatency atomic.Int64
	// inst holds the optional latency instrumentation; an atomic
	// pointer so enabling it never races with in-flight readers.
	inst atomic.Pointer[IOInstrumentation]
}

// NewMemStore returns a MemStore with the given page size.
func NewMemStore(pageSize int) *MemStore {
	if pageSize <= 0 {
		panic(fmt.Sprintf("storage: invalid page size %d", pageSize))
	}
	return &MemStore{
		pageSize: pageSize,
		pages:    make(map[PageID][]byte),
	}
}

// PageSize implements Store.
func (m *MemStore) PageSize() int { return m.pageSize }

// SetReadLatency makes every subsequent physical page read cost d of
// wall-clock time, turning the instantaneous in-memory simulated disk
// into a latency-accurate one. The paper reports page-access counts,
// which d does not change; the throughput experiments use it to
// reproduce the disk-resident regime, where concurrent readers gain by
// overlapping I/O waits.
func (m *MemStore) SetReadLatency(d time.Duration) { m.readLatency.Store(int64(d)) }

// Instrument implements Instrumentable: subsequent physical reads and
// writes observe their durations into the given histograms.
func (m *MemStore) Instrument(in IOInstrumentation) { m.inst.Store(&in) }

// Allocate implements Store.
func (m *MemStore) Allocate() (PageID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return InvalidPageID, ErrStoreClosed
	}
	var id PageID
	if n := len(m.free); n > 0 {
		id = m.free[n-1]
		m.free = m.free[:n-1]
	} else {
		id = m.next
		m.next++
	}
	m.pages[id] = make([]byte, m.pageSize)
	m.stats.allocs.Add(1)
	return id, nil
}

// ReadPage implements Store. It takes only the read latch, so any
// number of readers proceed in parallel; WritePage and Free exclude
// them.
func (m *MemStore) ReadPage(id PageID, buf []byte) error {
	if in := m.inst.Load(); in != nil && in.ReadNanos != nil {
		start := time.Now()
		err := m.readPage(id, buf)
		in.ReadNanos.ObserveSince(start)
		return err
	}
	return m.readPage(id, buf)
}

func (m *MemStore) readPage(id PageID, buf []byte) error {
	if d := m.readLatency.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return ErrStoreClosed
	}
	if len(buf) != m.pageSize {
		return ErrSizeMismatch
	}
	p, ok := m.pages[id]
	if !ok {
		return fmt.Errorf("%w: page %d", ErrPageNotFound, id)
	}
	copy(buf, p)
	m.stats.reads.Add(1)
	return nil
}

// WritePage implements Store.
func (m *MemStore) WritePage(id PageID, buf []byte) error {
	if in := m.inst.Load(); in != nil && in.WriteNanos != nil {
		start := time.Now()
		err := m.writePage(id, buf)
		in.WriteNanos.ObserveSince(start)
		return err
	}
	return m.writePage(id, buf)
}

func (m *MemStore) writePage(id PageID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrStoreClosed
	}
	if len(buf) != m.pageSize {
		return ErrSizeMismatch
	}
	p, ok := m.pages[id]
	if !ok {
		return fmt.Errorf("%w: page %d", ErrPageNotFound, id)
	}
	copy(p, buf)
	m.stats.writes.Add(1)
	return nil
}

// Free implements Store.
func (m *MemStore) Free(id PageID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrStoreClosed
	}
	if _, ok := m.pages[id]; !ok {
		return fmt.Errorf("%w: page %d", ErrPageNotFound, id)
	}
	delete(m.pages, id)
	m.free = append(m.free, id)
	m.stats.frees.Add(1)
	return nil
}

// NumPages implements Store. After Close it returns the snapshot taken
// at Close.
func (m *MemStore) NumPages() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return len(m.closedIDs)
	}
	return len(m.pages)
}

// PageIDs implements Store. After Close it returns the snapshot taken
// at Close.
func (m *MemStore) PageIDs() []PageID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		out := make([]PageID, len(m.closedIDs))
		copy(out, m.closedIDs)
		return out
	}
	out := make([]PageID, 0, len(m.pages))
	for id := range m.pages {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}

func sortIDs(s []PageID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// Stats implements Store. Every counter is loaded atomically, so the
// snapshot never contains a torn value even while readers are running.
func (m *MemStore) Stats() Stats { return m.stats.snapshot() }

// ResetStats implements Store.
func (m *MemStore) ResetStats() { m.stats.reset() }

// Close implements Store. The live-page set is snapshotted first, so
// NumPages and PageIDs keep answering afterwards.
func (m *MemStore) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closedIDs = m.closedIDs[:0]
	for id := range m.pages {
		m.closedIDs = append(m.closedIDs, id)
	}
	sortIDs(m.closedIDs)
	m.closed = true
	m.pages = nil
	m.free = nil
	return nil
}
