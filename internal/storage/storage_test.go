package storage

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

// storeConformance exercises any Store implementation.
func storeConformance(t *testing.T, s Store) {
	t.Helper()
	ps := s.PageSize()

	id1, err := s.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	id2, err := s.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if id1 == id2 {
		t.Fatal("Allocate returned duplicate IDs")
	}
	if got := s.NumPages(); got != 2 {
		t.Fatalf("NumPages = %d, want 2", got)
	}

	w := make([]byte, ps)
	for i := range w {
		w[i] = byte(i)
	}
	if err := s.WritePage(id1, w); err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	r := make([]byte, ps)
	if err := s.ReadPage(id1, r); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if !bytes.Equal(w, r) {
		t.Fatal("read back differs from written page")
	}

	// Fresh page is zeroed.
	if err := s.ReadPage(id2, r); err != nil {
		t.Fatalf("ReadPage fresh: %v", err)
	}
	for _, b := range r {
		if b != 0 {
			t.Fatal("fresh page not zeroed")
		}
	}

	// Size mismatch rejected.
	if err := s.WritePage(id1, w[:ps-1]); !errors.Is(err, ErrSizeMismatch) {
		t.Fatalf("short write err = %v, want ErrSizeMismatch", err)
	}
	if err := s.ReadPage(id1, r[:ps-1]); !errors.Is(err, ErrSizeMismatch) {
		t.Fatalf("short read err = %v, want ErrSizeMismatch", err)
	}

	// Free + reuse.
	if err := s.Free(id1); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if err := s.ReadPage(id1, r); !errors.Is(err, ErrPageNotFound) {
		t.Fatalf("read freed page err = %v, want ErrPageNotFound", err)
	}
	if err := s.Free(id1); !errors.Is(err, ErrPageNotFound) {
		t.Fatalf("double free err = %v, want ErrPageNotFound", err)
	}
	id3, err := s.Allocate()
	if err != nil {
		t.Fatalf("Allocate after free: %v", err)
	}
	if id3 != id1 {
		t.Logf("note: store did not recycle freed id (got %d, freed %d)", id3, id1)
	}
	if err := s.ReadPage(id3, r); err != nil {
		t.Fatalf("ReadPage recycled: %v", err)
	}
	for _, b := range r {
		if b != 0 {
			t.Fatal("recycled page not zeroed")
		}
	}

	st := s.Stats()
	if st.Reads == 0 || st.Writes == 0 || st.Allocs != 3 || st.Frees != 1 {
		t.Fatalf("stats = %+v", st)
	}
	s.ResetStats()
	if st := s.Stats(); st.Total() != 0 {
		t.Fatalf("stats after reset = %+v", st)
	}
}

func TestMemStoreConformance(t *testing.T) {
	s := NewMemStore(512)
	defer s.Close()
	storeConformance(t, s)
}

func TestFileStoreConformance(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	s, err := CreateFileStore(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	storeConformance(t, s)
}

func TestFileStoreReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	s, err := CreateFileStore(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	id1, _ := s.Allocate()
	id2, _ := s.Allocate()
	id3, _ := s.Allocate()
	w := make([]byte, 256)
	copy(w, []byte("persistent payload"))
	if err := s.WritePage(id2, w); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(id3); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.PageSize() != 256 {
		t.Fatalf("page size = %d, want 256", s2.PageSize())
	}
	if s2.NumPages() != 2 {
		t.Fatalf("NumPages = %d, want 2", s2.NumPages())
	}
	r := make([]byte, 256)
	if err := s2.ReadPage(id2, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r, w) {
		t.Fatal("payload lost across reopen")
	}
	// Freed page stays freed and is recycled.
	if err := s2.ReadPage(id3, r); !errors.Is(err, ErrPageNotFound) {
		t.Fatalf("freed page readable after reopen: %v", err)
	}
	id4, err := s2.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id4 != id3 {
		t.Fatalf("recycled id = %d, want %d", id4, id3)
	}
	_ = id1
}

func TestOpenFileStoreRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.db")
	if err := os.WriteFile(path, make([]byte, 64), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path); err == nil {
		t.Fatal("OpenFileStore accepted a garbage file")
	}
}

func TestMemStoreClosed(t *testing.T) {
	s := NewMemStore(128)
	id, _ := s.Allocate()
	s.Close()
	buf := make([]byte, 128)
	if err := s.ReadPage(id, buf); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("err = %v, want ErrStoreClosed", err)
	}
	if _, err := s.Allocate(); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("err = %v, want ErrStoreClosed", err)
	}
}

func TestSlottedPageBasic(t *testing.T) {
	p := NewSlottedPage(make([]byte, 256))
	if p.Len() != 0 {
		t.Fatalf("fresh page Len = %d", p.Len())
	}
	s1, err := p.Insert([]byte("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Insert([]byte("bravo-longer"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2", p.Len())
	}
	got, err := p.Get(s1)
	if err != nil || string(got) != "alpha" {
		t.Fatalf("Get(s1) = %q, %v", got, err)
	}
	got, err = p.Get(s2)
	if err != nil || string(got) != "bravo-longer" {
		t.Fatalf("Get(s2) = %q, %v", got, err)
	}
	if err := p.Delete(s1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(s1); !errors.Is(err, ErrSlotNotFound) {
		t.Fatalf("Get deleted = %v", err)
	}
	if err := p.Delete(s1); !errors.Is(err, ErrSlotNotFound) {
		t.Fatalf("double delete = %v", err)
	}
	// Slot of s2 survives deletion of s1.
	got, err = p.Get(s2)
	if err != nil || string(got) != "bravo-longer" {
		t.Fatalf("Get(s2) after delete = %q, %v", got, err)
	}
}

func TestSlottedPageTagAndReset(t *testing.T) {
	p := NewSlottedPage(make([]byte, 128))
	p.SetTag(0xDEADBEEF)
	if p.Tag() != 0xDEADBEEF {
		t.Fatalf("tag = %#x", p.Tag())
	}
	p.Insert([]byte("x"))
	p.Reset()
	if p.Len() != 0 || p.Tag() != 0 {
		t.Fatal("Reset did not clear page")
	}
}

func TestSlottedPageRejectsOversized(t *testing.T) {
	p := NewSlottedPage(make([]byte, 128))
	if _, err := p.Insert(make([]byte, 128)); !errors.Is(err, ErrRecordTooBig) {
		t.Fatalf("err = %v, want ErrRecordTooBig", err)
	}
	if _, err := p.Insert(make([]byte, p.Capacity())); err != nil {
		t.Fatalf("capacity-sized insert failed: %v", err)
	}
}

func TestSlottedPageFullThenDelete(t *testing.T) {
	p := NewSlottedPage(make([]byte, 256))
	rec := make([]byte, 40)
	var slots []int
	for {
		s, err := p.Insert(rec)
		if err != nil {
			if !errors.Is(err, ErrPageFull) {
				t.Fatalf("unexpected insert err: %v", err)
			}
			break
		}
		slots = append(slots, s)
	}
	if len(slots) < 4 {
		t.Fatalf("expected several records, got %d", len(slots))
	}
	if err := p.Delete(slots[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Insert(rec); err != nil {
		t.Fatalf("insert after delete should succeed (compaction): %v", err)
	}
}

func TestSlottedPageCompactionPreservesRecords(t *testing.T) {
	p := NewSlottedPage(make([]byte, 512))
	rng := rand.New(rand.NewSource(42))
	contents := map[int][]byte{}
	// Interleave inserts and deletes to fragment the heap.
	for i := 0; i < 200; i++ {
		if len(contents) > 0 && rng.Intn(3) == 0 {
			for s := range contents {
				if err := p.Delete(s); err != nil {
					t.Fatal(err)
				}
				delete(contents, s)
				break
			}
			continue
		}
		rec := make([]byte, 8+rng.Intn(32))
		rng.Read(rec)
		s, err := p.Insert(rec)
		if err != nil {
			if errors.Is(err, ErrPageFull) {
				continue
			}
			t.Fatal(err)
		}
		if _, dup := contents[s]; dup {
			t.Fatalf("slot %d reused while live", s)
		}
		contents[s] = append([]byte(nil), rec...)
	}
	if p.Len() != len(contents) {
		t.Fatalf("Len = %d, want %d", p.Len(), len(contents))
	}
	for s, want := range contents {
		got, err := p.Get(s)
		if err != nil {
			t.Fatalf("Get(%d): %v", s, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("slot %d content corrupted", s)
		}
	}
	// Slots() matches the live set.
	live := p.Slots()
	if len(live) != len(contents) {
		t.Fatalf("Slots len = %d, want %d", len(live), len(contents))
	}
	for _, s := range live {
		if _, ok := contents[s]; !ok {
			t.Fatalf("Slots reported dead slot %d", s)
		}
	}
}

func TestSlottedPageUpdate(t *testing.T) {
	p := NewSlottedPage(make([]byte, 256))
	s, err := p.Insert([]byte("short"))
	if err != nil {
		t.Fatal(err)
	}
	other, err := p.Insert([]byte("other-record"))
	if err != nil {
		t.Fatal(err)
	}
	// Shrink in place.
	if err := p.Update(s, []byte("st")); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Get(s); string(got) != "st" {
		t.Fatalf("after shrink = %q", got)
	}
	// Grow.
	long := bytes.Repeat([]byte("g"), 100)
	if err := p.Update(s, long); err != nil {
		t.Fatal(err)
	}
	if got, _ := p.Get(s); !bytes.Equal(got, long) {
		t.Fatal("grown record corrupted")
	}
	if got, _ := p.Get(other); string(got) != "other-record" {
		t.Fatal("neighbor record damaged by update")
	}
	// Grow past capacity fails and leaves record intact.
	if err := p.Update(s, make([]byte, 500)); !errors.Is(err, ErrPageFull) && !errors.Is(err, ErrRecordTooBig) {
		t.Fatalf("oversized update err = %v", err)
	}
}

func TestSlottedPageLoadValidates(t *testing.T) {
	buf := make([]byte, 128)
	buf[0] = 0xFF // absurd slot count
	buf[1] = 0xFF
	if _, err := LoadSlottedPage(buf); !errors.Is(err, ErrCorruptedPage) {
		t.Fatalf("err = %v, want ErrCorruptedPage", err)
	}
	// Round trip through bytes.
	p := NewSlottedPage(make([]byte, 128))
	s, _ := p.Insert([]byte("roundtrip"))
	q, err := LoadSlottedPage(p.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.Get(s)
	if err != nil || string(got) != "roundtrip" {
		t.Fatalf("Get after load = %q, %v", got, err)
	}
}

func TestSlottedPageFreeSpaceMonotone(t *testing.T) {
	p := NewSlottedPage(make([]byte, 512))
	prev := p.FreeSpace()
	for i := 0; i < 10; i++ {
		if _, err := p.Insert(make([]byte, 20)); err != nil {
			t.Fatal(err)
		}
		fs := p.FreeSpace()
		if fs >= prev {
			t.Fatalf("FreeSpace did not decrease: %d -> %d", prev, fs)
		}
		prev = fs
	}
}

func TestStatsSub(t *testing.T) {
	a := Stats{Reads: 10, Writes: 5, Allocs: 2, Frees: 1}
	b := Stats{Reads: 4, Writes: 2, Allocs: 1, Frees: 0}
	d := a.Sub(b)
	if d.Reads != 6 || d.Writes != 3 || d.Allocs != 1 || d.Frees != 1 {
		t.Fatalf("Sub = %+v", d)
	}
	if d.Total() != 9 {
		t.Fatalf("Total = %d", d.Total())
	}
}

func TestSlottedPageQuickProperty(t *testing.T) {
	// Property: for any sequence of insert/delete/update operations the
	// page behaves like a map slot -> bytes.
	f := func(ops []uint16, seed int64) bool {
		p := NewSlottedPage(make([]byte, 512))
		rng := rand.New(rand.NewSource(seed))
		shadow := map[int][]byte{}
		for _, op := range ops {
			switch op % 3 {
			case 0: // insert
				rec := make([]byte, 1+int(op%97))
				rng.Read(rec)
				s, err := p.Insert(rec)
				if err != nil {
					if errors.Is(err, ErrPageFull) || errors.Is(err, ErrRecordTooBig) {
						continue
					}
					return false
				}
				shadow[s] = append([]byte(nil), rec...)
			case 1: // delete an arbitrary live slot
				for s := range shadow {
					if err := p.Delete(s); err != nil {
						return false
					}
					delete(shadow, s)
					break
				}
			case 2: // update an arbitrary live slot
				for s := range shadow {
					rec := make([]byte, 1+int(op%61))
					rng.Read(rec)
					if err := p.Update(s, rec); err != nil {
						if errors.Is(err, ErrPageFull) {
							break
						}
						return false
					}
					shadow[s] = append([]byte(nil), rec...)
					break
				}
			}
		}
		if p.Len() != len(shadow) {
			return false
		}
		for s, want := range shadow {
			got, err := p.Get(s)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMemStorePageIDs(t *testing.T) {
	s := NewMemStore(128)
	defer s.Close()
	var want []PageID
	for i := 0; i < 5; i++ {
		id, _ := s.Allocate()
		want = append(want, id)
	}
	s.Free(want[2])
	ids := s.PageIDs()
	if len(ids) != 4 {
		t.Fatalf("PageIDs = %v", ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("PageIDs not ascending")
		}
	}
}
