package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// FileStore is an os.File-backed Store. Page 0 of the file is a
// metadata page holding a checksummed header (page size, allocation
// high-water mark, free-list head, flags, and a monotonic generation);
// user pages start at file offset pageSize. Freed pages are chained
// through their first 8 bytes — a marker word plus the id of the next
// free page — so the free list never outgrows the header no matter how
// many pages are freed.
//
// Crash safety: the header is rewritten eagerly on every allocator
// mutation (Allocate, Free), ordered so that a crash at any point
// leaves the file structurally consistent — at worst one page is live
// with stale contents, which the checksum layer or ccam-fsck flags.
// Because the header carries a CRC32 over its fields, a torn header
// write is detected (not silently misread) by OpenFileStore. Sync
// forces everything to stable storage; between Syncs the usual
// os-buffering caveats apply.
//
// FileStore exists so CCAM files can be durable; the experiments use
// MemStore, and both implementations pass the same conformance tests.
//
// Concurrency: ReadPage takes only the read latch (os.File.ReadAt is
// safe for parallel callers); Allocate, WritePage and Free are
// exclusive. The I/O counters are atomics so shared-latch readers
// account without racing.
type FileStore struct {
	mu       sync.RWMutex
	f        *os.File
	path     string
	pageSize int
	next     PageID
	freeHead PageID
	// freeNext caches the on-disk free chain (freed page -> next free
	// page) so Allocate never reads the device to pop the list.
	freeNext map[PageID]PageID
	nfree    int
	live     map[PageID]bool
	flags    uint32
	gen      uint64
	// appliedLSN records the WAL checkpoint the data file reflects
	// (zero for non-WAL files); advisory for fsck and diagnostics.
	appliedLSN uint64
	stats      ioCounters
	closed     bool
	// closedIDs snapshots the live page ids at Close, so NumPages and
	// PageIDs keep answering afterwards (the same snapshot semantics
	// the Store interface documents).
	closedIDs []PageID
	inst      atomic.Pointer[IOInstrumentation]
	// syncLatency is the simulated device latency charged per fsync,
	// in nanoseconds (atomic; 0 = the real device only). See
	// SetSyncLatency.
	syncLatency atomic.Int64
}

// fileHeader layout within the metadata page (fsHeaderLen bytes):
//
//	[0:8)   magic
//	[8:12)  page size
//	[12:16) next page id (allocation high-water mark)
//	[16:20) number of free pages
//	[20:24) free-list head page id (InvalidPageID when empty)
//	[24:28) flags (FlagCheckedPages: pages carry checksum trailers)
//	[28:36) generation (monotonic, bumped on every header write)
//	[36:44) applied LSN (last WAL checkpoint reflected in the data;
//	        zero for non-WAL files)
//	[44:48) CRC32-C over bytes [0:44)
//
// Freed pages begin with an 8-byte chain entry:
//
//	[0:4) freedMagic
//	[4:8) next free page id (InvalidPageID terminates the chain)
const (
	fsMagic     uint64 = 0xCCA4F11E00000003
	fsHeaderLen        = 48
	freedMagic  uint32 = 0xFEEEB10C
)

// File-format flags recorded in the header.
const (
	// FlagCheckedPages marks a file whose pages carry CRC32 trailers
	// written by CheckedStore; OpenPageFile uses it to re-wrap the
	// store on open.
	FlagCheckedPages uint32 = 1 << 0
	// FlagWAL marks a file whose mutations are logged to a sibling
	// write-ahead log directory (see WALDir); OpenPath replays it on
	// open.
	FlagWAL uint32 = 1 << 1
)

var fsCRCTable = crc32.MakeTable(crc32.Castagnoli)

// CreateFileStore creates (truncating) a page file at path.
func CreateFileStore(path string, pageSize int) (*FileStore, error) {
	return createFileStore(path, pageSize, 0)
}

func createFileStore(path string, pageSize int, flags uint32) (*FileStore, error) {
	if pageSize < 64 {
		return nil, fmt.Errorf("storage: page size %d too small for file store", pageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: create file store: %w", err)
	}
	fs := &FileStore{
		f:        f,
		path:     path,
		pageSize: pageSize,
		freeHead: InvalidPageID,
		freeNext: make(map[PageID]PageID),
		live:     make(map[PageID]bool),
		flags:    flags,
	}
	// Zero-fill the whole metadata page once, then lay the header in.
	if _, err := f.WriteAt(make([]byte, pageSize), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: init metadata page: %w", err)
	}
	if err := fs.writeHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return fs, nil
}

// OpenFileStore opens an existing page file created by CreateFileStore.
// A header whose checksum does not match (e.g. a torn write) is
// reported as ErrChecksum; a broken free-page chain as
// ErrCorruptedPage. Both are repairable with ccam-fsck -repair.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open file store: %w", err)
	}
	fs, err := loadFileStore(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return fs, nil
}

// loadFileStore parses the header and walks the free chain of an open
// page file.
func loadFileStore(f *os.File, path string) (*FileStore, error) {
	var hdr [fsHeaderLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("storage: read file store header: %w", err)
	}
	ph, err := parseHeader(hdr[:])
	if err != nil {
		return nil, fmt.Errorf("storage: %s: %w", path, err)
	}
	fs := &FileStore{
		f:        f,
		path:     path,
		pageSize: ph.pageSize,
		next:     ph.next,
		freeHead: ph.freeHead,
		freeNext: make(map[PageID]PageID, ph.nfree),
		live:     make(map[PageID]bool),
		flags:    ph.flags,
		gen:      ph.gen,
		nfree:    ph.nfree,

		appliedLSN: ph.appliedLSN,
	}
	// Walk the free chain: exactly nfree entries, each inside the
	// allocated range, no cycles, terminated by InvalidPageID.
	freed := make(map[PageID]bool, ph.nfree)
	cur := fs.freeHead
	for i := 0; i < ph.nfree; i++ {
		if cur == InvalidPageID || cur >= fs.next || freed[cur] {
			return nil, fmt.Errorf("storage: %s: free list broken at entry %d (page %d): %w",
				path, i, cur, ErrCorruptedPage)
		}
		var entry [8]byte
		if _, err := f.ReadAt(entry[:], fs.offset(cur)); err != nil {
			return nil, fmt.Errorf("storage: read free chain entry of page %d: %w", cur, err)
		}
		marker, next, ok := parseFreedEntry(entry[:])
		if !ok {
			return nil, fmt.Errorf("storage: %s: page %d on free list lacks freed marker (%#x): %w",
				path, cur, marker, ErrCorruptedPage)
		}
		freed[cur] = true
		fs.freeNext[cur] = next
		cur = next
	}
	if cur != InvalidPageID {
		return nil, fmt.Errorf("storage: %s: free list longer than header count %d: %w",
			path, ph.nfree, ErrCorruptedPage)
	}
	for id := PageID(0); id < fs.next; id++ {
		if !freed[id] {
			fs.live[id] = true
		}
	}
	return fs, nil
}

// parsedHeader is the decoded file header.
type parsedHeader struct {
	pageSize   int
	next       PageID
	nfree      int
	freeHead   PageID
	flags      uint32
	gen        uint64
	appliedLSN uint64
}

// encodeHeader lays out a checksummed header image.
func encodeHeader(ph parsedHeader) []byte {
	buf := make([]byte, fsHeaderLen)
	binary.LittleEndian.PutUint64(buf[0:8], fsMagic)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(ph.pageSize))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(ph.next))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(ph.nfree))
	binary.LittleEndian.PutUint32(buf[20:24], uint32(ph.freeHead))
	binary.LittleEndian.PutUint32(buf[24:28], ph.flags)
	binary.LittleEndian.PutUint64(buf[28:36], ph.gen)
	binary.LittleEndian.PutUint64(buf[36:44], ph.appliedLSN)
	binary.LittleEndian.PutUint32(buf[44:48], crc32.Checksum(buf[0:44], fsCRCTable))
	return buf
}

// parseHeader decodes and validates a raw header image. Errors wrap
// ErrChecksum (torn/corrupted header) or are plain format errors.
func parseHeader(hdr []byte) (parsedHeader, error) {
	var ph parsedHeader
	if len(hdr) < fsHeaderLen {
		return ph, fmt.Errorf("header too short (%d bytes)", len(hdr))
	}
	if binary.LittleEndian.Uint64(hdr[0:8]) != fsMagic {
		return ph, fmt.Errorf("not a page file (or unsupported version)")
	}
	// Decode the fields before the CRC check: on a torn header the
	// caller (fsck) still gets the best-effort geometry alongside the
	// ErrChecksum, which is what makes the header repairable.
	ph.pageSize = int(binary.LittleEndian.Uint32(hdr[8:12]))
	ph.next = PageID(binary.LittleEndian.Uint32(hdr[12:16]))
	ph.nfree = int(binary.LittleEndian.Uint32(hdr[16:20]))
	ph.freeHead = PageID(binary.LittleEndian.Uint32(hdr[20:24]))
	ph.flags = binary.LittleEndian.Uint32(hdr[24:28])
	ph.gen = binary.LittleEndian.Uint64(hdr[28:36])
	ph.appliedLSN = binary.LittleEndian.Uint64(hdr[36:44])
	want := binary.LittleEndian.Uint32(hdr[44:48])
	if got := crc32.Checksum(hdr[0:44], fsCRCTable); got != want {
		return ph, fmt.Errorf("header checksum mismatch (got %#x, want %#x): %w", got, want, ErrChecksum)
	}
	if ph.pageSize < 64 {
		return ph, fmt.Errorf("implausible page size %d", ph.pageSize)
	}
	if ph.nfree > int(ph.next) {
		return ph, fmt.Errorf("free count %d exceeds allocated pages %d: %w", ph.nfree, ph.next, ErrCorruptedPage)
	}
	return ph, nil
}

// parseFreedEntry decodes a freed page's 8-byte chain entry.
func parseFreedEntry(b []byte) (marker uint32, next PageID, ok bool) {
	marker = binary.LittleEndian.Uint32(b[0:4])
	next = PageID(binary.LittleEndian.Uint32(b[4:8]))
	return marker, next, marker == freedMagic
}

// writeHeader bumps the generation and rewrites the checksummed header
// in place. Caller holds the exclusive latch.
func (fs *FileStore) writeHeader() error {
	fs.gen++
	buf := encodeHeader(parsedHeader{
		pageSize:   fs.pageSize,
		next:       fs.next,
		nfree:      fs.nfree,
		freeHead:   fs.freeHead,
		flags:      fs.flags,
		gen:        fs.gen,
		appliedLSN: fs.appliedLSN,
	})
	if _, err := fs.f.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("storage: write file store header: %w", err)
	}
	return nil
}

func (fs *FileStore) offset(id PageID) int64 {
	return int64(fs.pageSize) * (int64(id) + 1) // +1 skips metadata page
}

// PageSize implements Store.
func (fs *FileStore) PageSize() int { return fs.pageSize }

// Flags returns the file-format flags recorded in the header.
func (fs *FileStore) Flags() uint32 { return fs.flags }

// Generation returns the header generation: it increases on every
// allocator mutation and Sync, so it orders file versions.
func (fs *FileStore) Generation() uint64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.gen
}

// Path returns the file path backing the store.
func (fs *FileStore) Path() string { return fs.path }

// AppliedLSN returns the WAL checkpoint LSN the data file reflects
// (zero for non-WAL files).
func (fs *FileStore) AppliedLSN() uint64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.appliedLSN
}

// SetAppliedLSN stamps the header with the WAL checkpoint LSN just
// flushed into the data file, and forces everything — the stamped
// header and all page writes before it — to stable storage.
func (fs *FileStore) SetAppliedLSN(lsn uint64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrStoreClosed
	}
	fs.appliedLSN = lsn
	if err := fs.writeHeader(); err != nil {
		return err
	}
	if err := fs.f.Sync(); err != nil {
		return fmt.Errorf("storage: sync applied lsn: %w", err)
	}
	fs.chargeSyncLatency()
	return nil
}

// SetSyncLatency makes every subsequent fsync of the data file cost an
// additional d of wall-clock time, turning a fast local device into a
// latency-accurate simulated disk — the durable-path counterpart of
// MemStore.SetReadLatency. Page-access counts are unaffected.
func (fs *FileStore) SetSyncLatency(d time.Duration) {
	fs.syncLatency.Store(int64(d))
}

func (fs *FileStore) chargeSyncLatency() {
	if lat := fs.syncLatency.Load(); lat > 0 {
		time.Sleep(time.Duration(lat))
	}
}

// SetFlag ORs a file-format flag into the header and rewrites it.
func (fs *FileStore) SetFlag(flag uint32) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrStoreClosed
	}
	fs.flags |= flag
	return fs.writeHeader()
}

// AllocSnapshot captures the allocator state for a WAL checkpoint: the
// high-water mark, the free chain in head-first order, and the header
// fields recovery needs to rebuild the file raw.
func (fs *FileStore) AllocSnapshot() (next PageID, chain []PageID, gen uint64, flags uint32, physPageSize int) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	chain = make([]PageID, 0, fs.nfree)
	for cur := fs.freeHead; cur != InvalidPageID && len(chain) < fs.nfree; {
		chain = append(chain, cur)
		cur = fs.freeNext[cur]
	}
	return fs.next, chain, fs.gen, fs.flags, fs.pageSize
}

// Allocate implements Store. Freed pages are recycled in LIFO order.
// The header is updated (and the recycled page zeroed) before the id
// is returned, so a crash mid-allocation never corrupts the free
// chain: at worst the page is recorded live with stale bytes, which
// the checksum layer detects.
func (fs *FileStore) Allocate() (PageID, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return InvalidPageID, ErrStoreClosed
	}
	var id PageID
	if fs.freeHead != InvalidPageID {
		id = fs.freeHead
		next, ok := fs.freeNext[id]
		if !ok {
			return InvalidPageID, fmt.Errorf("storage: free chain cache missing page %d: %w", id, ErrCorruptedPage)
		}
		fs.freeHead = next
		delete(fs.freeNext, id)
		fs.nfree--
	} else {
		id = fs.next
		fs.next++
	}
	// Header first: once it no longer lists the page as free, the
	// chain stays walkable even if the zeroing write below is lost.
	if err := fs.writeHeader(); err != nil {
		return InvalidPageID, err
	}
	zero := make([]byte, fs.pageSize)
	if _, err := fs.f.WriteAt(zero, fs.offset(id)); err != nil {
		return InvalidPageID, fmt.Errorf("storage: allocate page %d: %w", id, err)
	}
	fs.live[id] = true
	fs.stats.allocs.Add(1)
	return id, nil
}

// Instrument implements Instrumentable: subsequent physical reads and
// writes observe their durations into the given histograms.
func (fs *FileStore) Instrument(in IOInstrumentation) { fs.inst.Store(&in) }

// ReadPage implements Store. It takes only the read latch: ReadAt is a
// positioned read, safe under concurrent callers.
func (fs *FileStore) ReadPage(id PageID, buf []byte) error {
	if in := fs.inst.Load(); in != nil && in.ReadNanos != nil {
		start := time.Now()
		err := fs.readPage(id, buf)
		in.ReadNanos.ObserveSince(start)
		return err
	}
	return fs.readPage(id, buf)
}

func (fs *FileStore) readPage(id PageID, buf []byte) error {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if fs.closed {
		return ErrStoreClosed
	}
	if len(buf) != fs.pageSize {
		return ErrSizeMismatch
	}
	if !fs.live[id] {
		return fmt.Errorf("%w: page %d", ErrPageNotFound, id)
	}
	if _, err := fs.f.ReadAt(buf, fs.offset(id)); err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	fs.stats.reads.Add(1)
	return nil
}

// WritePage implements Store.
func (fs *FileStore) WritePage(id PageID, buf []byte) error {
	if in := fs.inst.Load(); in != nil && in.WriteNanos != nil {
		start := time.Now()
		err := fs.writePage(id, buf)
		in.WriteNanos.ObserveSince(start)
		return err
	}
	return fs.writePage(id, buf)
}

func (fs *FileStore) writePage(id PageID, buf []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrStoreClosed
	}
	if len(buf) != fs.pageSize {
		return ErrSizeMismatch
	}
	if !fs.live[id] {
		return fmt.Errorf("%w: page %d", ErrPageNotFound, id)
	}
	if _, err := fs.f.WriteAt(buf, fs.offset(id)); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	fs.stats.writes.Add(1)
	return nil
}

// Free implements Store. The page is chained onto the durable free
// list: its first 8 bytes on disk become the chain entry, then the
// header is updated to point at it. A crash between the two writes
// leaves the page live with a marker prefix — structurally consistent,
// flagged by the checksum layer or ccam-fsck.
func (fs *FileStore) Free(id PageID) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrStoreClosed
	}
	if !fs.live[id] {
		return fmt.Errorf("%w: page %d", ErrPageNotFound, id)
	}
	var entry [8]byte
	binary.LittleEndian.PutUint32(entry[0:4], freedMagic)
	binary.LittleEndian.PutUint32(entry[4:8], uint32(fs.freeHead))
	if _, err := fs.f.WriteAt(entry[:], fs.offset(id)); err != nil {
		return fmt.Errorf("storage: chain freed page %d: %w", id, err)
	}
	fs.freeNext[id] = fs.freeHead
	fs.freeHead = id
	fs.nfree++
	delete(fs.live, id)
	if err := fs.writeHeader(); err != nil {
		return err
	}
	fs.stats.frees.Add(1)
	return nil
}

// NumPages implements Store. After Close it returns the snapshot taken
// at Close.
func (fs *FileStore) NumPages() int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if fs.closed {
		return len(fs.closedIDs)
	}
	return len(fs.live)
}

// PageIDs implements Store. After Close it returns the snapshot taken
// at Close.
func (fs *FileStore) PageIDs() []PageID {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if fs.closed {
		out := make([]PageID, len(fs.closedIDs))
		copy(out, fs.closedIDs)
		return out
	}
	out := make([]PageID, 0, len(fs.live))
	for id := range fs.live {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}

// Stats implements Store. Every counter is loaded atomically, so the
// snapshot never contains a torn value even while readers are running.
func (fs *FileStore) Stats() Stats { return fs.stats.snapshot() }

// ResetStats implements Store.
func (fs *FileStore) ResetStats() { fs.stats.reset() }

// Sync flushes the header and file contents to stable storage.
func (fs *FileStore) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrStoreClosed
	}
	if err := fs.writeHeader(); err != nil {
		return err
	}
	if err := fs.f.Sync(); err != nil {
		return fmt.Errorf("storage: sync: %w", err)
	}
	fs.chargeSyncLatency()
	return nil
}

// Close implements Store. The header is flushed before closing, and
// the live-page set is snapshotted so NumPages and PageIDs keep
// answering afterwards.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil
	}
	fs.closedIDs = fs.closedIDs[:0]
	for id := range fs.live {
		fs.closedIDs = append(fs.closedIDs, id)
	}
	sortIDs(fs.closedIDs)
	fs.closed = true
	if err := fs.writeHeader(); err != nil {
		fs.f.Close()
		return err
	}
	if err := fs.f.Close(); err != nil {
		return fmt.Errorf("storage: close: %w", err)
	}
	return nil
}
