package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// FileStore is an os.File-backed Store. Page 0 of the file is a
// metadata page holding the page size, the allocation high-water mark
// and the head of the free list; user pages start at file offset
// pageSize. Freed pages are chained through their first 8 bytes.
//
// FileStore exists so CCAM files can be durable; the experiments use
// MemStore, and both implementations pass the same conformance tests.
//
// Concurrency: ReadPage takes only the read latch (os.File.ReadAt is
// safe for parallel callers); Allocate, WritePage and Free are
// exclusive. The I/O counters are atomics so shared-latch readers
// account without racing.
type FileStore struct {
	mu       sync.RWMutex
	f        *os.File
	pageSize int
	next     PageID
	free     []PageID
	live     map[PageID]bool
	stats    ioCounters
	closed   bool
	inst     atomic.Pointer[IOInstrumentation]
}

// fileHeader layout within metadata page:
//
//	[0:8)   magic
//	[8:12)  page size
//	[12:16) next page id (allocation high-water mark)
//	[16:20) number of free pages n
//	[20:20+4n) free page ids
const fsMagic uint64 = 0xCCA4F11E00000001

// CreateFileStore creates (truncating) a page file at path.
func CreateFileStore(path string, pageSize int) (*FileStore, error) {
	if pageSize < 64 {
		return nil, fmt.Errorf("storage: page size %d too small for file store", pageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: create file store: %w", err)
	}
	fs := &FileStore{f: f, pageSize: pageSize, live: make(map[PageID]bool)}
	if err := fs.writeHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return fs, nil
}

// OpenFileStore opens an existing page file created by CreateFileStore.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open file store: %w", err)
	}
	var hdr [20]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: read file store header: %w", err)
	}
	if binary.LittleEndian.Uint64(hdr[0:8]) != fsMagic {
		f.Close()
		return nil, fmt.Errorf("storage: %s is not a page file", path)
	}
	ps := int(binary.LittleEndian.Uint32(hdr[8:12]))
	fs := &FileStore{
		f:        f,
		pageSize: ps,
		next:     PageID(binary.LittleEndian.Uint32(hdr[12:16])),
		live:     make(map[PageID]bool),
	}
	nfree := int(binary.LittleEndian.Uint32(hdr[16:20]))
	if nfree > 0 {
		buf := make([]byte, 4*nfree)
		if _, err := f.ReadAt(buf, 20); err != nil {
			f.Close()
			return nil, fmt.Errorf("storage: read free list: %w", err)
		}
		for i := 0; i < nfree; i++ {
			fs.free = append(fs.free, PageID(binary.LittleEndian.Uint32(buf[4*i:])))
		}
	}
	freed := make(map[PageID]bool, len(fs.free))
	for _, id := range fs.free {
		freed[id] = true
	}
	for id := PageID(0); id < fs.next; id++ {
		if !freed[id] {
			fs.live[id] = true
		}
	}
	return fs, nil
}

func (fs *FileStore) writeHeader() error {
	// Header must fit in the metadata page.
	need := 20 + 4*len(fs.free)
	if need > fs.pageSize {
		// Compact: drop excess free ids (they leak space in the file but
		// keep the structure valid). In practice free lists stay small.
		fs.free = fs.free[:(fs.pageSize-20)/4]
	}
	buf := make([]byte, fs.pageSize)
	binary.LittleEndian.PutUint64(buf[0:8], fsMagic)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(fs.pageSize))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(fs.next))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(len(fs.free)))
	for i, id := range fs.free {
		binary.LittleEndian.PutUint32(buf[20+4*i:], uint32(id))
	}
	if _, err := fs.f.WriteAt(buf, 0); err != nil {
		return fmt.Errorf("storage: write file store header: %w", err)
	}
	return nil
}

func (fs *FileStore) offset(id PageID) int64 {
	return int64(fs.pageSize) * (int64(id) + 1) // +1 skips metadata page
}

// PageSize implements Store.
func (fs *FileStore) PageSize() int { return fs.pageSize }

// Allocate implements Store.
func (fs *FileStore) Allocate() (PageID, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return InvalidPageID, ErrStoreClosed
	}
	var id PageID
	if n := len(fs.free); n > 0 {
		id = fs.free[n-1]
		fs.free = fs.free[:n-1]
	} else {
		id = fs.next
		fs.next++
	}
	zero := make([]byte, fs.pageSize)
	if _, err := fs.f.WriteAt(zero, fs.offset(id)); err != nil {
		return InvalidPageID, fmt.Errorf("storage: allocate page %d: %w", id, err)
	}
	fs.live[id] = true
	fs.stats.allocs.Add(1)
	return id, nil
}

// Instrument implements Instrumentable: subsequent physical reads and
// writes observe their durations into the given histograms.
func (fs *FileStore) Instrument(in IOInstrumentation) { fs.inst.Store(&in) }

// ReadPage implements Store. It takes only the read latch: ReadAt is a
// positioned read, safe under concurrent callers.
func (fs *FileStore) ReadPage(id PageID, buf []byte) error {
	if in := fs.inst.Load(); in != nil && in.ReadNanos != nil {
		start := time.Now()
		err := fs.readPage(id, buf)
		in.ReadNanos.ObserveSince(start)
		return err
	}
	return fs.readPage(id, buf)
}

func (fs *FileStore) readPage(id PageID, buf []byte) error {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if fs.closed {
		return ErrStoreClosed
	}
	if len(buf) != fs.pageSize {
		return ErrSizeMismatch
	}
	if !fs.live[id] {
		return fmt.Errorf("%w: page %d", ErrPageNotFound, id)
	}
	if _, err := fs.f.ReadAt(buf, fs.offset(id)); err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	fs.stats.reads.Add(1)
	return nil
}

// WritePage implements Store.
func (fs *FileStore) WritePage(id PageID, buf []byte) error {
	if in := fs.inst.Load(); in != nil && in.WriteNanos != nil {
		start := time.Now()
		err := fs.writePage(id, buf)
		in.WriteNanos.ObserveSince(start)
		return err
	}
	return fs.writePage(id, buf)
}

func (fs *FileStore) writePage(id PageID, buf []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrStoreClosed
	}
	if len(buf) != fs.pageSize {
		return ErrSizeMismatch
	}
	if !fs.live[id] {
		return fmt.Errorf("%w: page %d", ErrPageNotFound, id)
	}
	if _, err := fs.f.WriteAt(buf, fs.offset(id)); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	fs.stats.writes.Add(1)
	return nil
}

// Free implements Store.
func (fs *FileStore) Free(id PageID) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrStoreClosed
	}
	if !fs.live[id] {
		return fmt.Errorf("%w: page %d", ErrPageNotFound, id)
	}
	delete(fs.live, id)
	fs.free = append(fs.free, id)
	fs.stats.frees.Add(1)
	return nil
}

// NumPages implements Store.
func (fs *FileStore) NumPages() int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return len(fs.live)
}

// PageIDs implements Store.
func (fs *FileStore) PageIDs() []PageID {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make([]PageID, 0, len(fs.live))
	for id := range fs.live {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}

// Stats implements Store. Every counter is loaded atomically, so the
// snapshot never contains a torn value even while readers are running.
func (fs *FileStore) Stats() Stats { return fs.stats.snapshot() }

// ResetStats implements Store.
func (fs *FileStore) ResetStats() { fs.stats.reset() }

// Sync flushes the header and file contents to stable storage.
func (fs *FileStore) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrStoreClosed
	}
	if err := fs.writeHeader(); err != nil {
		return err
	}
	if err := fs.f.Sync(); err != nil {
		return fmt.Errorf("storage: sync: %w", err)
	}
	return nil
}

// Close implements Store. The header is flushed before closing.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil
	}
	fs.closed = true
	if err := fs.writeHeader(); err != nil {
		fs.f.Close()
		return err
	}
	if err := fs.f.Close(); err != nil {
		return fmt.Errorf("storage: close: %w", err)
	}
	return nil
}
