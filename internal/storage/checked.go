package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"

	"ccam/internal/metrics"
)

// Checksum trailer layout, in the last ChecksumTrailerLen bytes of
// every physical page of a checked store:
//
//	[0:4) CRC32-C over the payload followed by the 4-byte page id
//	[4:8) trailer magic (distinguishes written pages from fresh zeros)
//
// Folding the page id into the CRC makes a misdirected write — a
// perfectly intact page image landing at the wrong offset — fail
// verification too.
const (
	// ChecksumTrailerLen is the per-page overhead of a CheckedStore:
	// the physical page is this much larger than the logical payload.
	ChecksumTrailerLen = 8

	checksumTrailerMagic uint32 = 0xC40C5EA1
)

// CheckedStore wraps a Store with per-page CRC32-C checksums. Every
// WritePage appends a checksum trailer; every ReadPage verifies it and
// fails with ErrChecksum (wrapped with the page id) on mismatch, so a
// torn write, a flipped bit or a misdirected write surfaces as a typed
// error instead of silently corrupt records. The logical page size is
// the inner store's minus ChecksumTrailerLen.
//
// A page that was allocated but never written reads back as all zeros
// (fresh pages carry no trailer); any other trailer-less image is
// reported as corrupt.
//
// CheckedStore is stateless apart from scratch buffers, so it is safe
// for concurrent use whenever the inner store is, and wrapping an
// existing file on open needs no recovery pass.
type CheckedStore struct {
	inner    Store
	pageSize int
	scratch  sync.Pool
	failures atomic.Pointer[metrics.Counter]
}

// NewCheckedStore wraps inner, whose page size must exceed the
// checksum trailer by at least 64 bytes of payload.
func NewCheckedStore(inner Store) (*CheckedStore, error) {
	ps := inner.PageSize() - ChecksumTrailerLen
	if ps < 56 {
		return nil, fmt.Errorf("storage: inner page size %d too small for checksummed pages", inner.PageSize())
	}
	c := &CheckedStore{inner: inner, pageSize: ps}
	c.scratch.New = func() any { return make([]byte, inner.PageSize()) }
	return c, nil
}

// CreateCheckedFile creates (truncating) a checksummed page file at
// path. The on-disk page size is pageSize; the logical payload per
// page is pageSize-ChecksumTrailerLen. The header records
// FlagCheckedPages so OpenPageFile re-wraps the store on open.
func CreateCheckedFile(path string, pageSize int) (*CheckedStore, *FileStore, error) {
	return CreateCheckedFileFlags(path, pageSize, 0)
}

// CreateCheckedFileFlags is CreateCheckedFile with extra header flags
// ORed in (e.g. FlagWAL for a write-ahead-logged file).
func CreateCheckedFileFlags(path string, pageSize int, extraFlags uint32) (*CheckedStore, *FileStore, error) {
	fs, err := createFileStore(path, pageSize, FlagCheckedPages|extraFlags)
	if err != nil {
		return nil, nil, err
	}
	cs, err := NewCheckedStore(fs)
	if err != nil {
		fs.Close()
		return nil, nil, err
	}
	return cs, fs, nil
}

// OpenPageFile opens a page file created by CreateFileStore or
// CreateCheckedFile, consulting the header flags: a checked file comes
// back wrapped in a CheckedStore, a plain file as the bare FileStore.
// The returned Store is what callers should read and write through;
// the *FileStore gives access to Sync and Close (closing either closes
// the file once).
func OpenPageFile(path string) (Store, *FileStore, error) {
	fs, err := OpenFileStore(path)
	if err != nil {
		return nil, nil, err
	}
	if fs.Flags()&FlagCheckedPages == 0 {
		return fs, fs, nil
	}
	cs, err := NewCheckedStore(fs)
	if err != nil {
		fs.Close()
		return nil, nil, err
	}
	return cs, fs, nil
}

// Inner returns the wrapped store.
func (c *CheckedStore) Inner() Store { return c.inner }

// PageSize implements Store: the logical payload size per page.
func (c *CheckedStore) PageSize() int { return c.pageSize }

// InstrumentChecksums implements ChecksumInstrumentable: subsequent
// verification failures increment counter (typically
// ccam_storage_checksum_failures_total).
func (c *CheckedStore) InstrumentChecksums(counter *metrics.Counter) {
	c.failures.Store(counter)
}

// Instrument implements Instrumentable by delegating to the inner
// store when it supports latency instrumentation.
func (c *CheckedStore) Instrument(in IOInstrumentation) {
	if i, ok := c.inner.(Instrumentable); ok {
		i.Instrument(in)
	}
}

// pageCRC computes the trailer checksum of a payload destined for page
// id.
func pageCRC(payload []byte, id PageID) uint32 {
	var idb [4]byte
	binary.LittleEndian.PutUint32(idb[:], uint32(id))
	crc := crc32.Checksum(payload, fsCRCTable)
	return crc32.Update(crc, fsCRCTable, idb[:])
}

// Allocate implements Store.
func (c *CheckedStore) Allocate() (PageID, error) { return c.inner.Allocate() }

// ReadPage implements Store: a physical read followed by checksum
// verification. Mismatches return ErrChecksum wrapped with the page
// id and increment the failure counter.
func (c *CheckedStore) ReadPage(id PageID, buf []byte) error {
	if len(buf) != c.pageSize {
		return ErrSizeMismatch
	}
	raw := c.scratch.Get().([]byte)
	defer c.scratch.Put(raw)
	if err := c.inner.ReadPage(id, raw); err != nil {
		return err
	}
	trailer := raw[c.pageSize:]
	if binary.LittleEndian.Uint32(trailer[4:8]) != checksumTrailerMagic {
		// No trailer: legitimate only for a never-written page, which
		// the stores hand out zeroed.
		for _, b := range raw {
			if b != 0 {
				c.failures.Load().Inc()
				return fmt.Errorf("%w: page %d has no checksum trailer", ErrChecksum, id)
			}
		}
		copy(buf, raw[:c.pageSize])
		return nil
	}
	want := binary.LittleEndian.Uint32(trailer[0:4])
	if got := pageCRC(raw[:c.pageSize], id); got != want {
		c.failures.Load().Inc()
		return fmt.Errorf("%w: page %d (stored %#x, computed %#x)", ErrChecksum, id, want, got)
	}
	copy(buf, raw[:c.pageSize])
	return nil
}

// WritePage implements Store: the payload is written with its checksum
// trailer in one physical page write.
func (c *CheckedStore) WritePage(id PageID, buf []byte) error {
	if len(buf) != c.pageSize {
		return ErrSizeMismatch
	}
	raw := c.scratch.Get().([]byte)
	defer c.scratch.Put(raw)
	copy(raw, buf)
	trailer := raw[c.pageSize:]
	binary.LittleEndian.PutUint32(trailer[0:4], pageCRC(raw[:c.pageSize], id))
	binary.LittleEndian.PutUint32(trailer[4:8], checksumTrailerMagic)
	return c.inner.WritePage(id, raw)
}

// Free implements Store.
func (c *CheckedStore) Free(id PageID) error { return c.inner.Free(id) }

// NumPages implements Store.
func (c *CheckedStore) NumPages() int { return c.inner.NumPages() }

// PageIDs implements Store.
func (c *CheckedStore) PageIDs() []PageID { return c.inner.PageIDs() }

// Stats implements Store: physical transfers are counted by the inner
// store.
func (c *CheckedStore) Stats() Stats { return c.inner.Stats() }

// ResetStats implements Store.
func (c *CheckedStore) ResetStats() { c.inner.ResetStats() }

// Close implements Store.
func (c *CheckedStore) Close() error { return c.inner.Close() }

var (
	_ Store                  = (*CheckedStore)(nil)
	_ ChecksumInstrumentable = (*CheckedStore)(nil)
	_ Instrumentable         = (*CheckedStore)(nil)
)
