package storage

import (
	"encoding/binary"
	"fmt"
	"os"
)

// This file holds the checkpoint codec and the raw restore step of
// crash recovery. Because the buffer pool runs no-steal and page frees
// are deferred to checkpoints, every physical write to the data file
// between checkpoints is allocator noise; recovery therefore rewrites
// the data file from the WAL's last complete checkpoint (page images,
// free chain, header) before redoing committed logical records.

// WALPageImage is one checkpointed page: the logical payload as the
// buffer pool sees it (checksum trailers are reapplied on restore).
type WALPageImage struct {
	ID      PageID
	Payload []byte
}

// WALCheckpoint is a decoded checkpoint: the page images and allocator
// snapshot between its start and end records.
type WALCheckpoint struct {
	StartLSN uint64
	EndLSN   uint64
	// PhysPageSize is the physical page size of the data file
	// (including any checksum trailer).
	PhysPageSize int
	Flags        uint32
	Gen          uint64
	Next         PageID
	// FreeChain lists the free pages in chain order (head first).
	FreeChain []PageID
	Images    []WALPageImage
}

// EncodeWALPageImage builds a WALRecPageImage payload.
func EncodeWALPageImage(id PageID, payload []byte) []byte {
	buf := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(id))
	copy(buf[4:], payload)
	return buf
}

// DecodeWALPageImage parses a WALRecPageImage payload.
func DecodeWALPageImage(b []byte) (WALPageImage, error) {
	if len(b) < 4 {
		return WALPageImage{}, fmt.Errorf("%w: page image record too short", ErrWALCorrupt)
	}
	return WALPageImage{ID: PageID(binary.LittleEndian.Uint32(b[0:4])), Payload: b[4:]}, nil
}

// EncodeWALAllocState builds a WALRecAllocState payload.
func EncodeWALAllocState(physPageSize int, flags uint32, gen uint64, next PageID, chain []PageID) []byte {
	buf := make([]byte, 24+4*len(chain))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(physPageSize))
	binary.LittleEndian.PutUint32(buf[4:8], flags)
	binary.LittleEndian.PutUint64(buf[8:16], gen)
	binary.LittleEndian.PutUint32(buf[16:20], uint32(next))
	binary.LittleEndian.PutUint32(buf[20:24], uint32(len(chain)))
	for i, id := range chain {
		binary.LittleEndian.PutUint32(buf[24+4*i:], uint32(id))
	}
	return buf
}

func decodeWALAllocState(b []byte, ck *WALCheckpoint) error {
	if len(b) < 24 {
		return fmt.Errorf("%w: alloc-state record too short", ErrWALCorrupt)
	}
	ck.PhysPageSize = int(binary.LittleEndian.Uint32(b[0:4]))
	ck.Flags = binary.LittleEndian.Uint32(b[4:8])
	ck.Gen = binary.LittleEndian.Uint64(b[8:16])
	ck.Next = PageID(binary.LittleEndian.Uint32(b[16:20]))
	n := int(binary.LittleEndian.Uint32(b[20:24]))
	if len(b) != 24+4*n {
		return fmt.Errorf("%w: alloc-state chain length mismatch", ErrWALCorrupt)
	}
	ck.FreeChain = make([]PageID, n)
	for i := 0; i < n; i++ {
		ck.FreeChain[i] = PageID(binary.LittleEndian.Uint32(b[24+4*i:]))
	}
	return nil
}

// EncodeWALCheckpointEnd builds a WALRecCheckpointEnd payload.
func EncodeWALCheckpointEnd(startLSN uint64) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], startLSN)
	return buf[:]
}

// LastCheckpoint extracts the last complete checkpoint from a record
// stream (as returned by ScanWALDir). It returns nil when no complete
// checkpoint exists. An end record whose body records were pruned away
// is an error: the log violated its retention invariant.
func LastCheckpoint(recs []WALRecord) (*WALCheckpoint, error) {
	end := -1
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].Type == WALRecCheckpointEnd {
			end = i
			break
		}
	}
	if end < 0 {
		return nil, nil
	}
	if len(recs[end].Payload) < 8 {
		return nil, fmt.Errorf("%w: checkpoint-end record too short", ErrWALCorrupt)
	}
	ck := &WALCheckpoint{
		StartLSN: binary.LittleEndian.Uint64(recs[end].Payload[0:8]),
		EndLSN:   recs[end].LSN,
	}
	if len(recs) == 0 || recs[0].LSN > ck.StartLSN {
		return nil, fmt.Errorf("%w: checkpoint body before retained log (start lsn %d, log begins at %d)",
			ErrWALCorrupt, ck.StartLSN, recs[0].LSN)
	}
	haveAlloc := false
	for _, r := range recs[:end] {
		if r.LSN < ck.StartLSN {
			continue
		}
		switch r.Type {
		case WALRecPageImage:
			img, err := DecodeWALPageImage(r.Payload)
			if err != nil {
				return nil, err
			}
			ck.Images = append(ck.Images, img)
		case WALRecAllocState:
			if err := decodeWALAllocState(r.Payload, ck); err != nil {
				return nil, err
			}
			haveAlloc = true
		}
	}
	if !haveAlloc {
		return nil, fmt.Errorf("%w: checkpoint at lsn %d has no alloc-state record", ErrWALCorrupt, ck.EndLSN)
	}
	return ck, nil
}

// WALReport summarizes a read-only WAL directory check for ccam-fsck.
type WALReport struct {
	Dir      string
	Segments int
	Records  int
	// LastLSN is the highest valid LSN in the log (0 when empty).
	LastLSN uint64
	// Torn reports a log ending mid-record — the normal signature of
	// a crash, repaired (truncated) on the next open.
	Torn bool
	// CheckpointLSN is the end LSN of the last complete checkpoint
	// (0 when the log holds none).
	CheckpointLSN uint64
	// Committed counts commit records past the last checkpoint —
	// batches a reopen would replay.
	Committed int
	// Err is a structural failure beyond a torn tail (e.g. a
	// checkpoint whose body was pruned away).
	Err error
}

// CheckWALDir inspects a WAL directory without modifying it.
func CheckWALDir(dir string) (*WALReport, error) {
	rep := &WALReport{Dir: dir}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	rep.Segments = len(segs)
	recs, torn, err := ScanWALDir(dir)
	if err != nil {
		return nil, err
	}
	rep.Records = len(recs)
	rep.Torn = torn
	if len(recs) > 0 {
		rep.LastLSN = recs[len(recs)-1].LSN
	}
	ck, ckErr := LastCheckpoint(recs)
	if ckErr != nil {
		rep.Err = ckErr
		return rep, nil
	}
	after := uint64(0)
	if ck != nil {
		rep.CheckpointLSN = ck.EndLSN
		after = ck.EndLSN
	}
	for _, r := range recs {
		if r.Type == WALRecCommit && r.LSN > after {
			rep.Committed++
		}
	}
	return rep, nil
}

// RecoverFile rewrites the data file at path from a checkpoint: every
// imaged page (with a fresh checksum trailer when the file is
// checked), a chain entry in every free page, and a rebuilt header,
// then fsyncs. Any garbage the crash left between checkpoints —
// zero-filled allocations, a torn header, half-executed frees — is
// overwritten wholesale.
func RecoverFile(path string, ck *WALCheckpoint) error {
	if ck.PhysPageSize < 64 {
		return fmt.Errorf("%w: checkpoint page size %d implausible", ErrWALCorrupt, ck.PhysPageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("storage: recover open: %w", err)
	}
	defer f.Close()
	checked := ck.Flags&FlagCheckedPages != 0
	logical := ck.PhysPageSize
	if checked {
		logical -= ChecksumTrailerLen
	}
	offset := func(id PageID) int64 { return int64(ck.PhysPageSize) * (int64(id) + 1) }
	raw := make([]byte, ck.PhysPageSize)
	for _, img := range ck.Images {
		if len(img.Payload) != logical {
			return fmt.Errorf("%w: page %d image is %d bytes, want %d",
				ErrWALCorrupt, img.ID, len(img.Payload), logical)
		}
		copy(raw, img.Payload)
		if checked {
			trailer := raw[logical:]
			binary.LittleEndian.PutUint32(trailer[0:4], pageCRC(img.Payload, img.ID))
			binary.LittleEndian.PutUint32(trailer[4:8], checksumTrailerMagic)
		}
		if _, err := f.WriteAt(raw, offset(img.ID)); err != nil {
			return fmt.Errorf("storage: recover page %d: %w", img.ID, err)
		}
	}
	// Lay the free chain back down: each free page's first 8 bytes
	// point at the next.
	var entry [8]byte
	for i, id := range ck.FreeChain {
		next := InvalidPageID
		if i+1 < len(ck.FreeChain) {
			next = ck.FreeChain[i+1]
		}
		binary.LittleEndian.PutUint32(entry[0:4], freedMagic)
		binary.LittleEndian.PutUint32(entry[4:8], uint32(next))
		if _, err := f.WriteAt(entry[:], offset(id)); err != nil {
			return fmt.Errorf("storage: recover free chain page %d: %w", id, err)
		}
	}
	freeHead := InvalidPageID
	if len(ck.FreeChain) > 0 {
		freeHead = ck.FreeChain[0]
	}
	hdr := encodeHeader(parsedHeader{
		pageSize:   ck.PhysPageSize,
		next:       ck.Next,
		nfree:      len(ck.FreeChain),
		freeHead:   freeHead,
		flags:      ck.Flags,
		gen:        ck.Gen + 1,
		appliedLSN: ck.EndLSN,
	})
	if _, err := f.WriteAt(hdr, 0); err != nil {
		return fmt.Errorf("storage: recover header: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("storage: recover sync: %w", err)
	}
	return nil
}
