package storage

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// SlottedPage lays variable-length records out in a fixed-size page.
// CCAM node records vary in size (successor- and predecessor-lists grow
// and shrink), so data pages use the classic slotted layout:
//
//	header | record heap (grows up) ... free ... slot directory (grows down)
//
// Header (12 bytes):
//
//	[0:2)  slot count (including tombstoned slots)
//	[2:4)  heap end offset (first free byte after the record heap)
//	[4:6)  live record count
//	[6:8)  reserved
//	[8:12) page tag (owner-defined, e.g. file kind)
//
// Each slot is 4 bytes at the end of the page: offset(2) | length(2).
// A slot with offset 0xFFFF is a tombstone. Records are addressed by
// stable slot numbers; compaction moves bytes, never slot numbers.
type SlottedPage struct {
	buf []byte
}

const (
	slottedHeaderSize = 12
	slotSize          = 4
	tombstoneOffset   = 0xFFFF

	// PerRecordOverhead is the slot-directory cost each stored record
	// adds on top of its payload bytes.
	PerRecordOverhead = slotSize
	// SlottedHeaderOverhead is the fixed page-header cost.
	SlottedHeaderOverhead = slottedHeaderSize
)

// NewSlottedPage wraps buf as a freshly initialized slotted page.
// The buffer must be at least slottedHeaderSize+slotSize bytes.
func NewSlottedPage(buf []byte) *SlottedPage {
	if len(buf) < slottedHeaderSize+slotSize {
		panic(fmt.Sprintf("storage: page buffer too small: %d", len(buf)))
	}
	p := &SlottedPage{buf: buf}
	p.Reset()
	return p
}

// LoadSlottedPage wraps buf, which must already contain a slotted page
// image (e.g. read from a Store). It validates header sanity: the
// record heap must end at or before the start of the slot directory —
// a heap that overlaps the directory would let corrupted slot entries
// alias directory bytes as record contents.
func LoadSlottedPage(buf []byte) (*SlottedPage, error) {
	if len(buf) < slottedHeaderSize {
		return nil, fmt.Errorf("%w: page image of %d bytes is smaller than the header", ErrCorruptedPage, len(buf))
	}
	p := &SlottedPage{buf: buf}
	n := int(p.slotCount())
	if n*slotSize > len(buf)-slottedHeaderSize {
		return nil, fmt.Errorf("%w: implausible header (slots=%d size=%d)",
			ErrCorruptedPage, n, len(buf))
	}
	// heapEnd is an absolute offset: it starts at the header size and
	// may grow up to the start of the slot directory, never into it.
	dirStart := len(buf) - n*slotSize
	if int(p.heapEnd()) < slottedHeaderSize || int(p.heapEnd()) > dirStart {
		return nil, fmt.Errorf("%w: heap [%d:%d) overlaps slot directory at %d (slots=%d size=%d)",
			ErrCorruptedPage, slottedHeaderSize, p.heapEnd(), dirStart, n, len(buf))
	}
	return p, nil
}

// Validate deep-checks every structural invariant of the page beyond
// what LoadSlottedPage enforces: each live slot must point inside the
// record heap, live records must not overlap one another, and the live
// count in the header must match the directory. ccam-fsck runs it on
// every data page.
func (p *SlottedPage) Validate() error {
	n := int(p.slotCount())
	dirStart := len(p.buf) - n*slotSize
	if n*slotSize > len(p.buf)-slottedHeaderSize {
		return fmt.Errorf("%w: slot count %d does not fit a %d-byte page", ErrCorruptedPage, n, len(p.buf))
	}
	heapEnd := int(p.heapEnd())
	if heapEnd < slottedHeaderSize || heapEnd > dirStart {
		return fmt.Errorf("%w: heap end %d outside [%d:%d]", ErrCorruptedPage, heapEnd, slottedHeaderSize, dirStart)
	}
	type span struct{ slot, off, end int }
	var live []span
	for i := 0; i < n; i++ {
		off, length := p.slot(i)
		if off == tombstoneOffset {
			continue
		}
		if off < slottedHeaderSize || off+length > heapEnd {
			return fmt.Errorf("%w: slot %d record [%d:%d) outside heap [%d:%d)",
				ErrCorruptedPage, i, off, off+length, slottedHeaderSize, heapEnd)
		}
		live = append(live, span{i, off, off + length})
	}
	if p.Len() != len(live) {
		return fmt.Errorf("%w: header live count %d != %d live slots", ErrCorruptedPage, p.Len(), len(live))
	}
	sort.Slice(live, func(a, b int) bool { return live[a].off < live[b].off })
	for i := 1; i < len(live); i++ {
		if live[i].off < live[i-1].end {
			return fmt.Errorf("%w: slots %d and %d overlap at offset %d",
				ErrCorruptedPage, live[i-1].slot, live[i].slot, live[i].off)
		}
	}
	return nil
}

// Reset reinitializes the page to empty.
func (p *SlottedPage) Reset() {
	for i := range p.buf {
		p.buf[i] = 0
	}
	p.setHeapEnd(slottedHeaderSize)
}

// Bytes returns the underlying page image.
func (p *SlottedPage) Bytes() []byte { return p.buf }

// Tag returns the owner-defined page tag.
func (p *SlottedPage) Tag() uint32 { return binary.LittleEndian.Uint32(p.buf[8:12]) }

// SetTag stores an owner-defined page tag.
func (p *SlottedPage) SetTag(t uint32) { binary.LittleEndian.PutUint32(p.buf[8:12], t) }

func (p *SlottedPage) slotCount() uint16 { return binary.LittleEndian.Uint16(p.buf[0:2]) }
func (p *SlottedPage) setSlotCount(n uint16) {
	binary.LittleEndian.PutUint16(p.buf[0:2], n)
}
func (p *SlottedPage) heapEnd() uint16 { return binary.LittleEndian.Uint16(p.buf[2:4]) }
func (p *SlottedPage) setHeapEnd(v int) {
	binary.LittleEndian.PutUint16(p.buf[2:4], uint16(v))
}

// Len returns the number of live records on the page.
func (p *SlottedPage) Len() int { return int(binary.LittleEndian.Uint16(p.buf[4:6])) }
func (p *SlottedPage) setLen(n int) {
	binary.LittleEndian.PutUint16(p.buf[4:6], uint16(n))
}

func (p *SlottedPage) slotPos(slot int) int {
	return len(p.buf) - (slot+1)*slotSize
}

func (p *SlottedPage) slot(slot int) (off, length int) {
	pos := p.slotPos(slot)
	return int(binary.LittleEndian.Uint16(p.buf[pos:])),
		int(binary.LittleEndian.Uint16(p.buf[pos+2:]))
}

func (p *SlottedPage) setSlot(slot, off, length int) {
	pos := p.slotPos(slot)
	binary.LittleEndian.PutUint16(p.buf[pos:], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[pos+2:], uint16(length))
}

// FreeSpace returns the number of bytes available for a new record,
// accounting for the slot directory entry a fresh insert may need and
// assuming compaction (fragmentation does not reduce FreeSpace).
func (p *SlottedPage) FreeSpace() int {
	used := slottedHeaderSize + p.liveBytes() + int(p.slotCount())*slotSize
	free := len(p.buf) - used - slotSize // reserve room for one new slot
	if free < 0 {
		return 0
	}
	return free
}

// UsedBytes returns the bytes occupied by live records (excluding
// header and slot directory).
func (p *SlottedPage) UsedBytes() int { return p.liveBytes() }

func (p *SlottedPage) liveBytes() int {
	total := 0
	for i := 0; i < int(p.slotCount()); i++ {
		off, length := p.slot(i)
		if off != tombstoneOffset {
			total += length
		}
	}
	return total
}

// Capacity returns the maximum record payload a single empty page can
// hold (one record, one slot).
func (p *SlottedPage) Capacity() int {
	return len(p.buf) - slottedHeaderSize - slotSize
}

// Insert stores rec and returns its slot number. It compacts the page
// if contiguous free space is insufficient but total free space is not.
func (p *SlottedPage) Insert(rec []byte) (int, error) {
	if len(rec) > p.Capacity() {
		return 0, fmt.Errorf("%w: %d > %d", ErrRecordTooBig, len(rec), p.Capacity())
	}
	// Reuse a tombstoned slot when available; otherwise a new slot.
	slot := -1
	n := int(p.slotCount())
	for i := 0; i < n; i++ {
		if off, _ := p.slot(i); off == tombstoneOffset {
			slot = i
			break
		}
	}
	needSlot := 0
	if slot == -1 {
		needSlot = slotSize
	}
	dirStart := len(p.buf) - n*slotSize
	contiguous := dirStart - needSlot - int(p.heapEnd())
	if contiguous < len(rec) {
		used := slottedHeaderSize + p.liveBytes() + n*slotSize + needSlot
		if len(p.buf)-used < len(rec) {
			return 0, fmt.Errorf("%w: need %d, have %d", ErrPageFull, len(rec), len(p.buf)-used)
		}
		p.compact()
		dirStart = len(p.buf) - n*slotSize
		contiguous = dirStart - needSlot - int(p.heapEnd())
		if contiguous < len(rec) {
			return 0, fmt.Errorf("%w after compaction: need %d, have %d", ErrPageFull, len(rec), contiguous)
		}
	}
	off := int(p.heapEnd())
	copy(p.buf[off:], rec)
	p.setHeapEnd(off + len(rec))
	if slot == -1 {
		slot = n
		p.setSlotCount(uint16(n + 1))
	}
	p.setSlot(slot, off, len(rec))
	p.setLen(p.Len() + 1)
	return slot, nil
}

// Get returns the record stored in slot. The returned slice aliases the
// page buffer; callers must copy before the page is modified or
// recycled.
func (p *SlottedPage) Get(slot int) ([]byte, error) {
	if slot < 0 || slot >= int(p.slotCount()) {
		return nil, fmt.Errorf("%w: slot %d of %d", ErrSlotNotFound, slot, p.slotCount())
	}
	off, length := p.slot(slot)
	if off == tombstoneOffset {
		return nil, fmt.Errorf("%w: slot %d is deleted", ErrSlotNotFound, slot)
	}
	// A live record must lie entirely within the record heap: an
	// offset below the header or an end past heapEnd would alias
	// header or slot-directory bytes as record contents.
	if off < slottedHeaderSize || off+length > int(p.heapEnd()) {
		return nil, fmt.Errorf("%w: slot %d record [%d:%d) outside heap [%d:%d)",
			ErrCorruptedPage, slot, off, off+length, slottedHeaderSize, p.heapEnd())
	}
	return p.buf[off : off+length], nil
}

// Delete tombstones slot. The space is reclaimed lazily by compaction.
func (p *SlottedPage) Delete(slot int) error {
	if slot < 0 || slot >= int(p.slotCount()) {
		return fmt.Errorf("%w: slot %d of %d", ErrSlotNotFound, slot, p.slotCount())
	}
	if off, _ := p.slot(slot); off == tombstoneOffset {
		return fmt.Errorf("%w: slot %d already deleted", ErrSlotNotFound, slot)
	}
	p.setSlot(slot, tombstoneOffset, 0)
	p.setLen(p.Len() - 1)
	// Trim trailing tombstones so slot numbers stay dense-ish.
	n := int(p.slotCount())
	for n > 0 {
		if off, _ := p.slot(n - 1); off != tombstoneOffset {
			break
		}
		n--
	}
	p.setSlotCount(uint16(n))
	return nil
}

// Update replaces the record in slot with rec, growing or shrinking in
// place. It fails with ErrPageFull if the page cannot hold the new
// size even after compaction.
func (p *SlottedPage) Update(slot int, rec []byte) error {
	if slot < 0 || slot >= int(p.slotCount()) {
		return fmt.Errorf("%w: slot %d of %d", ErrSlotNotFound, slot, p.slotCount())
	}
	off, length := p.slot(slot)
	if off == tombstoneOffset {
		return fmt.Errorf("%w: slot %d is deleted", ErrSlotNotFound, slot)
	}
	if len(rec) <= length {
		copy(p.buf[off:], rec)
		p.setSlot(slot, off, len(rec))
		return nil
	}
	// Grow: check total free space (current record's bytes count as free).
	n := int(p.slotCount())
	used := slottedHeaderSize + p.liveBytes() - length + n*slotSize
	if len(p.buf)-used < len(rec) {
		return fmt.Errorf("%w: update needs %d, have %d", ErrPageFull, len(rec), len(p.buf)-used)
	}
	// Tombstone, compact if needed, re-insert at heap end, keep slot.
	p.setSlot(slot, tombstoneOffset, 0)
	dirStart := len(p.buf) - n*slotSize
	if dirStart-int(p.heapEnd()) < len(rec) {
		p.compact()
	}
	newOff := int(p.heapEnd())
	copy(p.buf[newOff:], rec)
	p.setHeapEnd(newOff + len(rec))
	p.setSlot(slot, newOff, len(rec))
	return nil
}

// Slots returns the live slot numbers in ascending order.
func (p *SlottedPage) Slots() []int {
	var out []int
	for i := 0; i < int(p.slotCount()); i++ {
		if off, _ := p.slot(i); off != tombstoneOffset {
			out = append(out, i)
		}
	}
	return out
}

// compact rewrites the record heap contiguously, preserving slot
// numbers.
func (p *SlottedPage) compact() {
	type entry struct{ slot, off, length int }
	var live []entry
	for i := 0; i < int(p.slotCount()); i++ {
		off, length := p.slot(i)
		if off != tombstoneOffset {
			live = append(live, entry{i, off, length})
		}
	}
	sort.Slice(live, func(a, b int) bool { return live[a].off < live[b].off })
	w := slottedHeaderSize
	for _, e := range live {
		if e.off != w {
			copy(p.buf[w:w+e.length], p.buf[e.off:e.off+e.length])
		}
		p.setSlot(e.slot, w, e.length)
		w += e.length
	}
	p.setHeapEnd(w)
}
