package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"ccam/internal/metrics"
)

// FaultOp selects which store operation a fault rule applies to.
type FaultOp uint8

// Fault operations.
const (
	// FaultAnyOp matches every operation.
	FaultAnyOp FaultOp = iota
	// FaultRead matches ReadPage.
	FaultRead
	// FaultWrite matches WritePage.
	FaultWrite
	// FaultAllocate matches Allocate.
	FaultAllocate
	// FaultFree matches Free.
	FaultFree
)

func (op FaultOp) String() string {
	switch op {
	case FaultAnyOp:
		return "any"
	case FaultRead:
		return "read"
	case FaultWrite:
		return "write"
	case FaultAllocate:
		return "allocate"
	case FaultFree:
		return "free"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// FaultMode selects what a triggered fault does.
type FaultMode uint8

// Fault modes.
const (
	// FaultError fails the operation with Fault.Err (default
	// ErrFaultInjected) without touching the device.
	FaultError FaultMode = iota
	// FaultTornWrite simulates a crash mid-write: a random-length
	// prefix of the new image is spliced over the old page contents,
	// written through, and the operation reports Fault.Err — exactly
	// what a power cut during a sector-spanning write leaves behind.
	// Only meaningful on writes.
	FaultTornWrite
	// FaultBitFlip silently corrupts the transfer: one random bit of
	// the page image is inverted (in the written image on writes, in
	// the returned buffer on reads) and the operation reports success.
	FaultBitFlip
)

// AnyPage makes a Fault match every page.
const AnyPage = InvalidPageID

// Fault is one injection rule. The zero value of Page targets page 0;
// use AnyPage to match all pages.
type Fault struct {
	// Op restricts the rule to one operation (FaultAnyOp: all).
	Op FaultOp
	// Page restricts the rule to one page (AnyPage: all).
	Page PageID
	// After skips this many matching operations before the rule
	// starts firing.
	After int
	// Count limits how many times the rule fires (0 = unlimited).
	Count int
	// Mode selects the failure behaviour.
	Mode FaultMode
	// Err is the error reported by FaultError and FaultTornWrite
	// (default ErrFaultInjected). It is always wrapped so
	// errors.Is(err, ErrFaultInjected) also matches the default.
	Err error

	seen  int // matching ops observed (to honor After)
	fired int // times this rule has triggered
}

// FaultStore wraps a Store with deterministic fault injection: rules
// added with Inject fire on matching operations, producing clean
// errors, torn writes or silent bit flips. All randomness (torn-write
// cut points, flipped bit positions) comes from one seeded
// *rand.Rand, so a failing sequence replays exactly. It is the
// failure-path test harness for every layer above the stores.
type FaultStore struct {
	inner Store
	mu    sync.Mutex
	rng   *rand.Rand
	rules []*Fault
	// injected counts triggered faults; the optional metrics counter
	// mirrors it when instrumented.
	injected atomic.Int64
	counter  atomic.Pointer[metrics.Counter]
}

// NewFaultStore wraps inner with a fault injector seeded with seed.
func NewFaultStore(inner Store, seed int64) *FaultStore {
	return &FaultStore{inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// Inject adds a rule. Rules are evaluated in insertion order and the
// first match fires. Returns the store for chaining.
func (f *FaultStore) Inject(fl Fault) *FaultStore {
	f.mu.Lock()
	defer f.mu.Unlock()
	cp := fl
	f.rules = append(f.rules, &cp)
	return f
}

// FailAfter injects a rule failing every matching operation (on any
// page) after the first n succeed — the classic dying-device harness.
func (f *FaultStore) FailAfter(op FaultOp, n int) *FaultStore {
	return f.Inject(Fault{Op: op, Page: AnyPage, After: n})
}

// Clear removes every rule.
func (f *FaultStore) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

// Injected returns the number of faults triggered so far.
func (f *FaultStore) Injected() int64 { return f.injected.Load() }

// InstrumentFaults implements FaultInstrumentable: subsequent
// triggered faults increment counter (typically
// ccam_storage_faults_injected_total).
func (f *FaultStore) InstrumentFaults(counter *metrics.Counter) {
	f.counter.Store(counter)
}

// Inner returns the wrapped store.
func (f *FaultStore) Inner() Store { return f.inner }

// trigger finds the first matching armed rule for (op, id) and, if one
// fires, returns it. The rng stays guarded by the same mutex, so
// sequences are deterministic.
func (f *FaultStore) trigger(op FaultOp, id PageID) *Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.rules {
		if r.Op != FaultAnyOp && r.Op != op {
			continue
		}
		if r.Page != AnyPage && r.Page != id {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		r.seen++
		if r.seen <= r.After {
			continue
		}
		r.fired++
		f.injected.Add(1)
		f.counter.Load().Inc()
		return r
	}
	return nil
}

// err wraps the rule's error (or the default) with operation context,
// keeping both the custom error and ErrFaultInjected matchable.
func (r *Fault) err(op FaultOp, id PageID) error {
	if r.Err != nil {
		return fmt.Errorf("storage: fault on %s page %d: %w (%w)", op, id, r.Err, ErrFaultInjected)
	}
	return fmt.Errorf("fault on %s page %d: %w", op, id, ErrFaultInjected)
}

// PageSize implements Store.
func (f *FaultStore) PageSize() int { return f.inner.PageSize() }

// Allocate implements Store.
func (f *FaultStore) Allocate() (PageID, error) {
	if r := f.trigger(FaultAllocate, AnyPage); r != nil {
		return InvalidPageID, r.err(FaultAllocate, AnyPage)
	}
	return f.inner.Allocate()
}

// ReadPage implements Store.
func (f *FaultStore) ReadPage(id PageID, buf []byte) error {
	r := f.trigger(FaultRead, id)
	if r == nil {
		return f.inner.ReadPage(id, buf)
	}
	if r.Mode == FaultBitFlip {
		if err := f.inner.ReadPage(id, buf); err != nil {
			return err
		}
		f.flipBit(buf)
		return nil
	}
	return r.err(FaultRead, id)
}

// WritePage implements Store.
func (f *FaultStore) WritePage(id PageID, buf []byte) error {
	r := f.trigger(FaultWrite, id)
	if r == nil {
		return f.inner.WritePage(id, buf)
	}
	switch r.Mode {
	case FaultTornWrite:
		old := make([]byte, f.inner.PageSize())
		if err := f.inner.ReadPage(id, old); err != nil {
			return r.err(FaultWrite, id)
		}
		torn := make([]byte, len(buf))
		copy(torn, buf)
		f.mu.Lock()
		cut := 1 + f.rng.Intn(len(buf)-1) // at least one byte old and new
		f.mu.Unlock()
		copy(torn[cut:], old[cut:])
		// Best effort, as a crashing kernel would be; the caller sees
		// the failure either way.
		_ = f.inner.WritePage(id, torn)
		return r.err(FaultWrite, id)
	case FaultBitFlip:
		flipped := make([]byte, len(buf))
		copy(flipped, buf)
		f.flipBit(flipped)
		return f.inner.WritePage(id, flipped)
	default:
		return r.err(FaultWrite, id)
	}
}

// Free implements Store.
func (f *FaultStore) Free(id PageID) error {
	if r := f.trigger(FaultFree, id); r != nil {
		return r.err(FaultFree, id)
	}
	return f.inner.Free(id)
}

// flipBit inverts one rng-chosen bit of b.
func (f *FaultStore) flipBit(b []byte) {
	if len(b) == 0 {
		return
	}
	f.mu.Lock()
	bit := f.rng.Intn(len(b) * 8)
	f.mu.Unlock()
	b[bit/8] ^= 1 << (bit % 8)
}

// NumPages implements Store.
func (f *FaultStore) NumPages() int { return f.inner.NumPages() }

// PageIDs implements Store.
func (f *FaultStore) PageIDs() []PageID { return f.inner.PageIDs() }

// Stats implements Store.
func (f *FaultStore) Stats() Stats { return f.inner.Stats() }

// ResetStats implements Store.
func (f *FaultStore) ResetStats() { f.inner.ResetStats() }

// Close implements Store.
func (f *FaultStore) Close() error { return f.inner.Close() }

var (
	_ Store               = (*FaultStore)(nil)
	_ FaultInstrumentable = (*FaultStore)(nil)
)
