package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"
)

// This file implements the verification and repair engine behind
// cmd/ccam-fsck. It deliberately reads the file with raw positioned
// I/O instead of OpenFileStore, so a file too damaged to open (torn
// header, broken free chain) can still be inspected page by page and
// repaired.

// PageDamage describes one damaged page.
type PageDamage struct {
	ID  PageID
	Err error
}

func (d PageDamage) String() string { return fmt.Sprintf("page %d: %v", d.ID, d.Err) }

// FsckReport is the result of CheckFile or RepairFile.
type FsckReport struct {
	Path     string
	PageSize int
	// Checked reports whether pages carry checksum trailers
	// (FlagCheckedPages).
	Checked    bool
	Generation uint64
	// AppliedLSN is the WAL checkpoint the data file reflects (zero
	// for non-WAL files).
	AppliedLSN uint64
	// WAL reports whether the header carries FlagWAL (mutations are
	// logged to a sibling WAL directory).
	WAL bool
	// NextPage is the allocation high-water mark from the header.
	NextPage PageID
	// HeaderErr is non-nil when the header is damaged (torn write,
	// checksum mismatch, implausible fields).
	HeaderErr error
	// FreeListErr is non-nil when the free-page chain is broken.
	FreeListErr error
	// FreePages lists the pages on the (walkable prefix of the) free
	// chain.
	FreePages []PageID
	// LivePages counts pages that are allocated, not free and intact.
	LivePages int
	// Damaged lists live pages that failed verification: checksum
	// mismatch, missing trailer, or slotted-page invariant violation.
	Damaged []PageDamage
	// Repaired lists the actions RepairFile took (empty for
	// CheckFile).
	Repaired []string
}

// OK reports whether the file verified clean.
func (r *FsckReport) OK() bool {
	return r.HeaderErr == nil && r.FreeListErr == nil && len(r.Damaged) == 0
}

// FsckOptions tunes verification.
type FsckOptions struct {
	// SkipSlotted disables the slotted-page invariant checks, for
	// page files whose pages are not slotted data pages.
	SkipSlotted bool
}

// CheckFile verifies a page file: header magic and checksum, free-page
// chain, per-page checksums (when the file is checked) and
// slotted-page invariants. It never modifies the file. The returned
// error is non-nil only for environmental failures (file unreadable);
// verification findings live in the report.
func CheckFile(path string, opts FsckOptions) (*FsckReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: fsck open: %w", err)
	}
	defer f.Close()
	return checkFile(f, path, opts)
}

func checkFile(f *os.File, path string, opts FsckOptions) (*FsckReport, error) {
	rep := &FsckReport{Path: path}
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("storage: fsck stat: %w", err)
	}

	var hdr [fsHeaderLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		rep.HeaderErr = fmt.Errorf("header unreadable: %w", err)
		return rep, nil
	}
	ph, perr := parseHeader(hdr[:])
	if perr != nil {
		rep.HeaderErr = perr
		// Without magic + page size nothing else is addressable.
		if binary.LittleEndian.Uint64(hdr[0:8]) != fsMagic || ph.pageSize < 64 {
			return rep, nil
		}
		// Torn header with intact leading fields: report it, then keep
		// verifying pages with the parsed (best-effort) geometry so
		// the damage summary is complete.
	}
	rep.PageSize = ph.pageSize
	rep.Checked = ph.flags&FlagCheckedPages != 0
	rep.WAL = ph.flags&FlagWAL != 0
	rep.Generation = ph.gen
	rep.AppliedLSN = ph.appliedLSN
	rep.NextPage = ph.next

	// The high-water mark must fit the file: pages may be unwritten at
	// the tail (sparse allocation), but a next far past EOF means the
	// header and data disagree.
	maxPages := PageID(0)
	if st.Size() > int64(ph.pageSize) {
		maxPages = PageID((st.Size() - 1) / int64(ph.pageSize)) // excludes metadata page, rounds up
	}
	if ph.next > maxPages && rep.HeaderErr == nil {
		rep.HeaderErr = fmt.Errorf("header claims %d pages but file holds at most %d: %w",
			ph.next, maxPages, ErrCorruptedPage)
	}
	scanTo := ph.next
	if scanTo > maxPages {
		scanTo = maxPages
	}

	// Walk the free chain, tolerating damage: the walkable prefix
	// still tells us which pages to skip below.
	free := make(map[PageID]bool, ph.nfree)
	offset := func(id PageID) int64 { return int64(ph.pageSize) * (int64(id) + 1) }
	cur := ph.freeHead
	for i := 0; i < ph.nfree; i++ {
		if cur == InvalidPageID || cur >= ph.next || free[cur] {
			rep.FreeListErr = fmt.Errorf("chain broken at entry %d (page %d): %w", i, cur, ErrCorruptedPage)
			break
		}
		var entry [8]byte
		if _, err := f.ReadAt(entry[:], offset(cur)); err != nil {
			rep.FreeListErr = fmt.Errorf("chain entry %d (page %d) unreadable: %w", i, cur, err)
			break
		}
		marker, next, ok := parseFreedEntry(entry[:])
		if !ok {
			rep.FreeListErr = fmt.Errorf("page %d on free chain lacks freed marker (found %#x): %w",
				cur, marker, ErrCorruptedPage)
			break
		}
		free[cur] = true
		rep.FreePages = append(rep.FreePages, cur)
		cur = next
	}
	if rep.FreeListErr == nil && cur != InvalidPageID {
		rep.FreeListErr = fmt.Errorf("chain longer than header count %d: %w", ph.nfree, ErrCorruptedPage)
	}

	// Verify every live page.
	raw := make([]byte, ph.pageSize)
	for id := PageID(0); id < scanTo; id++ {
		if free[id] {
			continue
		}
		if err := verifyPage(f, raw, id, offset(id), rep.Checked, opts); err != nil {
			rep.Damaged = append(rep.Damaged, PageDamage{ID: id, Err: err})
			continue
		}
		rep.LivePages++
	}
	return rep, nil
}

// verifyPage checks one live page image: checksum trailer (when the
// file is checked) and slotted-page invariants.
func verifyPage(f *os.File, raw []byte, id PageID, off int64, checked bool, opts FsckOptions) error {
	if _, err := f.ReadAt(raw, off); err != nil {
		return fmt.Errorf("unreadable: %w", err)
	}
	payload := raw
	if checked {
		ps := len(raw) - ChecksumTrailerLen
		payload = raw[:ps]
		trailer := raw[ps:]
		if binary.LittleEndian.Uint32(trailer[4:8]) != checksumTrailerMagic {
			if !allZero(raw) {
				return fmt.Errorf("%w: no checksum trailer on a non-empty page", ErrChecksum)
			}
			return nil // never-written page
		}
		want := binary.LittleEndian.Uint32(trailer[0:4])
		if got := pageCRC(payload, id); got != want {
			return fmt.Errorf("%w (stored %#x, computed %#x)", ErrChecksum, want, got)
		}
	} else if allZero(raw) {
		return nil // never-written page
	}
	if opts.SkipSlotted {
		return nil
	}
	sp, err := LoadSlottedPage(payload)
	if err != nil {
		return err
	}
	return sp.Validate()
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// RepairFile verifies the file like CheckFile, then repairs what it
// can in place:
//
//   - A damaged header (torn write / bad checksum / impossible counts)
//     is rebuilt from the file itself, provided magic and page size
//     survive: the high-water mark is clamped to the file length and
//     the free chain is reconstructed from pages carrying the freed
//     marker.
//   - Damaged pages are quarantined: chained onto the free list so the
//     file opens cleanly (and OpenPath degrades to the surviving
//     records) instead of failing outright. Their record contents are
//     lost — that is what the quarantine records.
//
// The returned report reflects a re-verification after repair; its
// Repaired field lists the actions taken.
func RepairFile(path string, opts FsckOptions) (*FsckReport, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: fsck open for repair: %w", err)
	}
	defer f.Close()

	rep, err := checkFile(f, path, opts)
	if err != nil {
		return nil, err
	}
	if rep.OK() {
		return rep, nil
	}
	if rep.PageSize < 64 {
		return rep, fmt.Errorf("storage: fsck: header magic or page size destroyed; cannot repair %s", path)
	}
	var actions []string

	ph := parsedHeader{
		pageSize:   rep.PageSize,
		next:       rep.NextPage,
		freeHead:   InvalidPageID,
		gen:        rep.Generation + 1,
		appliedLSN: rep.AppliedLSN,
	}
	if rep.Checked {
		ph.flags |= FlagCheckedPages
	}
	if rep.WAL {
		ph.flags |= FlagWAL
	}

	// Clamp the high-water mark to what the file can hold.
	st, err := f.Stat()
	if err != nil {
		return rep, fmt.Errorf("storage: fsck stat: %w", err)
	}
	maxPages := PageID(0)
	if st.Size() > int64(ph.pageSize) {
		maxPages = PageID((st.Size() - 1) / int64(ph.pageSize))
	}
	if ph.next > maxPages {
		actions = append(actions, fmt.Sprintf("clamped page count %d -> %d", ph.next, maxPages))
		ph.next = maxPages
	}

	// Rebuild the free set: pages already on the walkable chain, pages
	// carrying a freed marker (orphans of a crashed Free), and every
	// damaged page (the quarantine).
	freeSet := make(map[PageID]bool, len(rep.FreePages)+len(rep.Damaged))
	for _, id := range rep.FreePages {
		if id < ph.next {
			freeSet[id] = true
		}
	}
	offset := func(id PageID) int64 { return int64(ph.pageSize) * (int64(id) + 1) }
	if rep.HeaderErr != nil || rep.FreeListErr != nil {
		var entry [8]byte
		for id := PageID(0); id < ph.next; id++ {
			if freeSet[id] {
				continue
			}
			if _, err := f.ReadAt(entry[:], offset(id)); err != nil {
				continue
			}
			if _, _, ok := parseFreedEntry(entry[:]); ok {
				freeSet[id] = true
				actions = append(actions, fmt.Sprintf("recovered freed page %d from its marker", id))
			}
		}
	}
	for _, d := range rep.Damaged {
		if d.ID >= ph.next || freeSet[d.ID] {
			continue
		}
		freeSet[d.ID] = true
		actions = append(actions, fmt.Sprintf("quarantined page %d (%v)", d.ID, d.Err))
	}

	// Write the chain entries (ascending, each pointing at the next),
	// then the rebuilt header — the same crash-ordering the store
	// itself uses.
	ids := make([]PageID, 0, len(freeSet))
	for id := range freeSet {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var entry [8]byte
	for i, id := range ids {
		next := InvalidPageID
		if i+1 < len(ids) {
			next = ids[i+1]
		}
		binary.LittleEndian.PutUint32(entry[0:4], freedMagic)
		binary.LittleEndian.PutUint32(entry[4:8], uint32(next))
		if _, err := f.WriteAt(entry[:], offset(id)); err != nil {
			return rep, fmt.Errorf("storage: fsck: chain page %d: %w", id, err)
		}
	}
	ph.nfree = len(ids)
	if len(ids) > 0 {
		ph.freeHead = ids[0]
	}
	hdr := encodeHeader(ph)
	if _, err := f.WriteAt(hdr, 0); err != nil {
		return rep, fmt.Errorf("storage: fsck: rewrite header: %w", err)
	}
	if rep.HeaderErr != nil {
		actions = append(actions, "rebuilt header")
	}
	if err := f.Sync(); err != nil {
		return rep, fmt.Errorf("storage: fsck: sync: %w", err)
	}

	// Re-verify and report the result of the repair.
	rep2, err := checkFile(f, path, opts)
	if err != nil {
		return rep, err
	}
	rep2.Repaired = actions
	return rep2, nil
}

// CorruptPage flips bit (page-relative bit index) of page id in the
// file at path, bypassing every integrity layer. It is the fault
// helper behind ccam-fsck -flip and the CI smoke test; it has no place
// in production code paths.
func CorruptPage(path string, id PageID, bit int) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("storage: corrupt open: %w", err)
	}
	defer f.Close()
	var hdr [fsHeaderLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return fmt.Errorf("storage: corrupt read header: %w", err)
	}
	ph, err := parseHeader(hdr[:])
	if err != nil && ph.pageSize < 64 {
		return fmt.Errorf("storage: corrupt: %w", err)
	}
	if bit < 0 || bit >= ph.pageSize*8 {
		return fmt.Errorf("storage: corrupt: bit %d outside page of %d bytes", bit, ph.pageSize)
	}
	off := int64(ph.pageSize)*(int64(id)+1) + int64(bit/8)
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return fmt.Errorf("storage: corrupt read: %w", err)
	}
	b[0] ^= 1 << (bit % 8)
	if _, err := f.WriteAt(b[:], off); err != nil {
		return fmt.Errorf("storage: corrupt write: %w", err)
	}
	return nil
}
