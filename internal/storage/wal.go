package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ccam/internal/metrics"
)

// This file implements the write-ahead log behind the durable mutation
// path. The WAL is a directory of segment files next to the data file;
// every record carries a monotonic LSN and a CRC32-C (the same
// Castagnoli table the page checksums use), so a torn tail after a
// crash is detected and truncated rather than misread.
//
// Durability protocol (redo-only, no-steal):
//
//   - Mutations append logical records, then a commit record. The data
//     file is NOT written between checkpoints — the buffer pool runs
//     no-steal, so every physical page write between checkpoints is
//     allocator noise (zero-fills, header churn) that recovery
//     discards.
//   - Checkpoint writes full page images of every dirty page plus an
//     allocator snapshot into the WAL, marks the checkpoint complete,
//     then flushes the data file. The WAL always retains its last
//     complete checkpoint, so recovery can rebuild the data file from
//     the WAL alone no matter where the flush tore.
//   - Recovery restores the last complete checkpoint image into the
//     data file raw (pages, free chain, header), then redoes committed
//     logical records with LSN past the checkpoint.
//
// Group commit: concurrent committers elect a leader under a dedicated
// sync mutex; the leader fsyncs once for everything appended so far and
// followers observe the advanced durable LSN without touching the
// device.

// SyncPolicy selects when commits are forced to stable storage.
type SyncPolicy int

const (
	// SyncGroupCommit (the default) coalesces concurrent committers
	// into one fsync: a commit blocks until its LSN is durable, but
	// only one of the waiters issues the fsync.
	SyncGroupCommit SyncPolicy = iota
	// SyncEveryCommit issues one fsync per commit, serialized. The
	// honest single-writer baseline.
	SyncEveryCommit
	// SyncNone never fsyncs on commit; durability rides on the OS.
	// Commits acknowledged under SyncNone can be lost by a crash.
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncGroupCommit:
		return "group"
	case SyncEveryCommit:
		return "every"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// WALRecordType tags a WAL record.
type WALRecordType uint8

const (
	// WALRecBegin opens a batch of logical mutations.
	WALRecBegin WALRecordType = iota + 1
	// WALRecMutation is one logical mutation (payload encoded by the
	// netfile layer).
	WALRecMutation
	// WALRecCommit seals a batch: every mutation since the matching
	// begin is atomic with it.
	WALRecCommit
	// WALRecAbort discards the open batch (validation passed but apply
	// failed mid-way).
	WALRecAbort
	// WALRecPageImage is a checkpoint page image:
	// [page id u32][logical payload].
	WALRecPageImage
	// WALRecAllocState is the checkpoint allocator snapshot:
	// [phys page size u32][flags u32][gen u64][next u32][nchain u32][chain u32...].
	WALRecAllocState
	// WALRecCheckpointEnd seals a checkpoint: [start LSN u64]. Only a
	// checkpoint whose end record survived is restorable.
	WALRecCheckpointEnd
)

func (t WALRecordType) String() string {
	switch t {
	case WALRecBegin:
		return "begin"
	case WALRecMutation:
		return "mutation"
	case WALRecCommit:
		return "commit"
	case WALRecAbort:
		return "abort"
	case WALRecPageImage:
		return "page-image"
	case WALRecAllocState:
		return "alloc-state"
	case WALRecCheckpointEnd:
		return "checkpoint-end"
	default:
		return fmt.Sprintf("WALRecordType(%d)", int(t))
	}
}

// WAL segment layout: a 16-byte header [walMagic u64][first LSN u64],
// then records back to back:
//
//	[payload len u32][lsn u64][type u8][payload][crc32c u32]
//
// The CRC covers everything before it (len through payload). LSNs are
// assigned sequentially starting at 1 and never reused, including
// across Reset.
const (
	walMagic        uint64 = 0xCCA4F11E0057A101
	walSegHeaderLen        = WALSegmentHeaderLen
	// WALSegmentHeaderLen is the size of the per-segment header; the
	// first record of a segment starts at this offset (crash drills
	// cut "empty log" there).
	WALSegmentHeaderLen = 16
	walRecHeaderLen     = 4 + 8 + 1
	walRecOverhead      = walRecHeaderLen + 4
	walMaxPayload       = 1 << 28

	// DefaultWALSegmentBytes is the rotation threshold for segment
	// files.
	DefaultWALSegmentBytes = 1 << 20
)

// maxCommitDelay caps the group-formation wait a leader adds before
// forcing the log, however slow the device's fsyncs are.
const maxCommitDelay = 500 * time.Microsecond

// WALSuffix is appended to the data file path to name the WAL
// directory.
const WALSuffix = ".wal"

// WALDir returns the WAL directory path for a data file path.
func WALDir(dataPath string) string { return dataPath + WALSuffix }

// ErrWALCorrupt reports a WAL segment whose contents fail structural or
// checksum validation beyond an ordinary torn tail.
var ErrWALCorrupt = errors.New("storage: wal corrupt")

// WALRecord is one decoded log record.
type WALRecord struct {
	LSN     uint64
	Type    WALRecordType
	Payload []byte
}

// WALInstrumentation carries the metric hooks the facade wires in. Any
// field may be nil.
type WALInstrumentation struct {
	Fsyncs    *metrics.Counter   // fsyncs issued on the log
	GroupSize *metrics.Histogram // commits acknowledged per fsync
	Appends   *metrics.Counter   // records appended
	Bytes     *metrics.Counter   // bytes appended
}

type walSegment struct {
	index    uint64
	firstLSN uint64
	path     string
	// f is non-nil for the active segment and for segments rotated out
	// since the last Prune: a group-commit leader may hold a reference
	// to a just-rotated file, so handles are only closed once a prune
	// (or Close) proves no syncer can still reach them.
	f *os.File
}

// WAL is a segmented, checksummed write-ahead log with group commit.
//
// Concurrency: Append serializes under mu; Commit runs leader-elected
// fsyncs under syncMu without holding mu, so appenders are never
// blocked behind the device. Any write or fsync failure poisons the log
// (the error is sticky) — a WAL that may have lost a record must not
// accept more.
type WAL struct {
	dir          string
	policy       SyncPolicy
	segmentBytes int64

	mu       sync.Mutex
	f        *os.File // active segment
	off      int64
	nextLSN  uint64
	segments []walSegment
	closed   bool

	appended atomic.Uint64 // highest LSN written to the OS
	durable  atomic.Uint64 // highest LSN known fsynced
	pending  atomic.Int64  // committers awaiting the next fsync
	fsyncs   atomic.Int64  // fsyncs issued on the log
	grouped  atomic.Int64  // commits acknowledged by those fsyncs

	syncNanos atomic.Int64 // EWMA of fsync duration, for group formation
	prevGroup atomic.Int64 // size of the last acknowledged commit group
	// syncLatency is the simulated device latency charged per fsync,
	// in nanoseconds (atomic; 0 = the real device only). See
	// SetSyncLatency.
	syncLatency atomic.Int64

	syncMu sync.Mutex
	err    atomic.Pointer[error]
	inst   atomic.Pointer[WALInstrumentation]

	roundMu sync.Mutex // guards leading; roundCv's locker
	roundCv *sync.Cond // broadcast when a leader round ends
	leading bool       // a group-commit leader is at the device
}

// CreateWAL creates a fresh, empty WAL directory at dir (removing any
// previous log there). segmentBytes <= 0 selects the default rotation
// threshold.
func CreateWAL(dir string, policy SyncPolicy, segmentBytes int64) (*WAL, error) {
	if err := os.RemoveAll(dir); err != nil {
		return nil, fmt.Errorf("storage: wal create: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: wal create: %w", err)
	}
	w := newWAL(dir, policy, segmentBytes)
	w.nextLSN = 1
	if err := w.openSegmentLocked(1, 1); err != nil {
		return nil, err
	}
	return w, nil
}

func newWAL(dir string, policy SyncPolicy, segmentBytes int64) *WAL {
	if segmentBytes <= 0 {
		segmentBytes = DefaultWALSegmentBytes
	}
	if segmentBytes < walSegHeaderLen+walRecOverhead {
		segmentBytes = walSegHeaderLen + walRecOverhead
	}
	w := &WAL{dir: dir, policy: policy, segmentBytes: segmentBytes}
	w.roundCv = sync.NewCond(&w.roundMu)
	return w
}

// openSegmentLocked creates segment file `index` whose first record
// will carry firstLSN, and makes it the active segment. Caller holds
// mu (or has exclusive access during construction).
func (w *WAL) openSegmentLocked(index, firstLSN uint64) error {
	path := filepath.Join(w.dir, segmentName(index))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: wal segment %d: %w", index, err)
	}
	var hdr [walSegHeaderLen]byte
	binary.LittleEndian.PutUint64(hdr[0:8], walMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], firstLSN)
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		f.Close()
		return fmt.Errorf("storage: wal segment %d header: %w", index, err)
	}
	w.f = f
	w.off = walSegHeaderLen
	w.segments = append(w.segments, walSegment{index: index, firstLSN: firstLSN, path: path, f: f})
	return nil
}

func segmentName(index uint64) string { return fmt.Sprintf("%08d.wal", index) }

func parseSegmentName(name string) (uint64, bool) {
	if filepath.Ext(name) != WALSuffix {
		return 0, false
	}
	base := name[:len(name)-len(WALSuffix)]
	if len(base) != 8 {
		return 0, false
	}
	var idx uint64
	for _, c := range base {
		if c < '0' || c > '9' {
			return 0, false
		}
		idx = idx*10 + uint64(c-'0')
	}
	return idx, true
}

// Policy returns the commit sync policy.
func (w *WAL) Policy() SyncPolicy { return w.policy }

// Dir returns the WAL directory.
func (w *WAL) Dir() string { return w.dir }

// Instrument wires metric hooks into the log.
func (w *WAL) Instrument(in WALInstrumentation) { w.inst.Store(&in) }

// Err returns the sticky failure, if the log is poisoned.
func (w *WAL) Err() error {
	if p := w.err.Load(); p != nil {
		return *p
	}
	return nil
}

func (w *WAL) fail(err error) error {
	werr := fmt.Errorf("storage: wal poisoned: %w", err)
	w.err.CompareAndSwap(nil, &werr)
	return w.Err()
}

// DurableLSN returns the highest LSN known to be on stable storage.
func (w *WAL) DurableLSN() uint64 { return w.durable.Load() }

// AppendedLSN returns the highest LSN handed to the OS.
func (w *WAL) AppendedLSN() uint64 { return w.appended.Load() }

// SetSyncLatency makes every subsequent fsync of the log cost an
// additional d of wall-clock time, turning a fast local device into a
// latency-accurate simulated disk — the durable-path counterpart of
// MemStore.SetReadLatency. Fsync counts and group-commit accounting
// are unaffected; the delay folds into the EWMA that sizes commit
// groups, exactly as a slower real device would.
func (w *WAL) SetSyncLatency(d time.Duration) {
	w.syncLatency.Store(int64(d))
}

// FsyncStats returns the number of fsyncs the log has issued and the
// number of commits those fsyncs acknowledged (their ratio is the mean
// group-commit size). Always counted, independent of any attached
// instrumentation.
func (w *WAL) FsyncStats() (fsyncs, commits int64) {
	return w.fsyncs.Load(), w.grouped.Load()
}

// Append writes one record and returns its LSN. The record is in the
// OS buffer when Append returns; call Commit (or Sync) to make it
// durable.
func (w *WAL) Append(t WALRecordType, payload []byte) (uint64, error) {
	if len(payload) > walMaxPayload {
		return 0, fmt.Errorf("storage: wal record payload %d bytes exceeds limit", len(payload))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrStoreClosed
	}
	if err := w.Err(); err != nil {
		return 0, err
	}
	recLen := int64(walRecOverhead + len(payload))
	if w.off+recLen > w.segmentBytes && w.off > walSegHeaderLen {
		if err := w.rotateLocked(); err != nil {
			return 0, w.fail(err)
		}
	}
	lsn := w.nextLSN
	buf := make([]byte, recLen)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[4:12], lsn)
	buf[12] = byte(t)
	copy(buf[walRecHeaderLen:], payload)
	crc := crc32.Checksum(buf[:walRecHeaderLen+len(payload)], fsCRCTable)
	binary.LittleEndian.PutUint32(buf[walRecHeaderLen+len(payload):], crc)
	if _, err := w.f.WriteAt(buf, w.off); err != nil {
		return 0, w.fail(fmt.Errorf("append lsn %d: %w", lsn, err))
	}
	w.off += recLen
	w.nextLSN++
	w.appended.Store(lsn)
	if in := w.inst.Load(); in != nil {
		if in.Appends != nil {
			in.Appends.Inc()
		}
		if in.Bytes != nil {
			in.Bytes.Add(recLen)
		}
	}
	return lsn, nil
}

// rotateLocked seals the active segment (fsyncing it, so everything in
// it becomes durable) and opens the next one. The sealed segment's
// handle stays open until the next Prune/Close so a concurrent
// group-commit leader holding it can still fsync safely.
func (w *WAL) rotateLocked() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("rotate sync: %w", err)
	}
	w.advanceDurable(w.nextLSN - 1)
	last := w.segments[len(w.segments)-1]
	return w.openSegmentLocked(last.index+1, w.nextLSN)
}

func (w *WAL) advanceDurable(target uint64) {
	for {
		cur := w.durable.Load()
		if cur >= target || w.durable.CompareAndSwap(cur, target) {
			return
		}
	}
}

// Commit makes the record at lsn durable according to the sync policy.
// Under SyncGroupCommit concurrent callers coalesce into one fsync.
func (w *WAL) Commit(lsn uint64) error {
	if err := w.Err(); err != nil {
		return err
	}
	switch w.policy {
	case SyncNone:
		return nil
	case SyncEveryCommit:
		// Serialize fsyncs: one per commit, the single-writer
		// baseline the group-commit experiment compares against.
		w.syncMu.Lock()
		defer w.syncMu.Unlock()
		return w.leaderSync(1)
	default:
		if w.durable.Load() >= lsn {
			return nil
		}
		w.pending.Add(1)
		return w.syncTo(lsn)
	}
}

// Sync forces everything appended so far to stable storage.
func (w *WAL) Sync() error {
	w.pending.Add(1)
	return w.syncTo(w.appended.Load())
}

// syncTo blocks until target is durable. One committer at a time holds
// leadership (syncMu, taken by TryLock) and fsyncs for the whole group.
// Followers do NOT queue on syncMu: a mutex queue is woken one waiter
// at a time and freshly-arriving committers barge past it, which
// starves the group down to ~1 commit per fsync. Instead they wait for
// the leader's round to end, then re-check durability together — at
// most one of them takes the next round.
func (w *WAL) syncTo(target uint64) error {
	for {
		if w.durable.Load() >= target {
			return nil
		}
		if err := w.Err(); err != nil {
			return err
		}
		if w.syncMu.TryLock() {
			if err := w.leadRound(); err != nil {
				return err
			}
			continue
		}
		w.roundMu.Lock()
		for w.leading && w.durable.Load() < target {
			w.roundCv.Wait()
		}
		w.roundMu.Unlock()
	}
}

// leadRound runs one leader round: group formation, one fsync covering
// everything appended so far, then a broadcast that releases the
// followers to re-check durability. Caller won syncMu via TryLock;
// leadRound releases it.
func (w *WAL) leadRound() error {
	w.roundMu.Lock()
	w.leading = true
	w.roundMu.Unlock()
	defer func() {
		w.roundMu.Lock()
		w.leading = false
		w.roundMu.Unlock()
		w.roundCv.Broadcast()
		w.syncMu.Unlock()
	}()
	// Group formation (an adaptive commit delay): concurrent
	// committers arrive staggered because their appends serialize
	// behind the store latch, so the leader elected right after the
	// previous fsync would otherwise force a near-empty fsync and push
	// everyone else into the next one. When the log shows concurrency
	// — other committers already waiting, or the previous fsync
	// acknowledged a group — the leader waits about half a device sync
	// so in-flight commits ride this fsync instead. An uncontended
	// commit never waits, and the delay tracks the measured fsync
	// latency, so it stays a fraction of what the device charges
	// anyway. Spin-yield rather than sleep: the timer wheel rounds a
	// microsecond sleep up by more than a whole device sync, and only
	// the elected leader pays the spin.
	if w.pending.Load() > 1 || w.prevGroup.Load() > 1 {
		if d := time.Duration(w.syncNanos.Load() / 2); d > 0 {
			if d > maxCommitDelay {
				d = maxCommitDelay
			}
			for deadline := time.Now().Add(d); time.Now().Before(deadline); {
				runtime.Gosched()
			}
		}
	}
	return w.leaderSync(w.pending.Swap(0))
}

// leaderSync fsyncs the active segment and advances the durable LSN.
// Caller holds syncMu. group is the number of commits this fsync
// acknowledges (for the group-size histogram).
func (w *WAL) leaderSync(group int64) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrStoreClosed
	}
	f := w.f
	high := w.appended.Load()
	w.mu.Unlock()
	start := time.Now()
	if err := f.Sync(); err != nil {
		return w.fail(fmt.Errorf("commit sync: %w", err))
	}
	if lat := w.syncLatency.Load(); lat > 0 {
		time.Sleep(time.Duration(lat))
	}
	// Fold the sync duration into the EWMA that sizes the group
	// formation delay.
	d := time.Since(start).Nanoseconds()
	if old := w.syncNanos.Load(); old > 0 {
		d = (3*old + d) / 4
	}
	w.syncNanos.Store(d)
	w.advanceDurable(high)
	w.fsyncs.Add(1)
	if group > 0 {
		w.grouped.Add(group)
		w.prevGroup.Store(group)
	}
	if in := w.inst.Load(); in != nil {
		if in.Fsyncs != nil {
			in.Fsyncs.Inc()
		}
		if in.GroupSize != nil && group > 0 {
			in.GroupSize.Observe(group)
		}
	}
	return nil
}

// Prune removes whole segments that only contain records with LSN <
// beforeLSN. The active segment is never removed, and a segment is
// only removable when the following segment proves every record at or
// past beforeLSN lives elsewhere. Retired file handles from earlier
// rotations are closed here.
func (w *WAL) Prune(beforeLSN uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrStoreClosed
	}
	keep := 0
	for i := range w.segments {
		if i+1 >= len(w.segments) || w.segments[i+1].firstLSN > beforeLSN {
			break
		}
		keep = i + 1
	}
	for i := 0; i < keep; i++ {
		s := w.segments[i]
		if s.f != nil {
			s.f.Close()
		}
		if err := os.Remove(s.path); err != nil {
			return fmt.Errorf("storage: wal prune %s: %w", s.path, err)
		}
	}
	w.segments = append(w.segments[:0], w.segments[keep:]...)
	// Handles of rotated-out (but still retained) segments can be
	// released too: only the active segment is ever fsynced.
	for i := range w.segments[:len(w.segments)-1] {
		if w.segments[i].f != nil {
			w.segments[i].f.Close()
			w.segments[i].f = nil
		}
	}
	return nil
}

// Reset discards every record and starts a fresh segment. LSNs stay
// monotonic across the reset. Used when the store is rebuilt from
// scratch (Build), which supersedes all logged history.
func (w *WAL) Reset() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrStoreClosed
	}
	if err := w.Err(); err != nil {
		return err
	}
	var lastIndex uint64
	for _, s := range w.segments {
		if s.f != nil {
			s.f.Close()
		}
		if err := os.Remove(s.path); err != nil {
			return fmt.Errorf("storage: wal reset %s: %w", s.path, err)
		}
		lastIndex = s.index
	}
	w.segments = w.segments[:0]
	w.f = nil
	if err := w.openSegmentLocked(lastIndex+1, w.nextLSN); err != nil {
		return w.fail(err)
	}
	w.durable.Store(w.nextLSN - 1)
	w.appended.Store(w.nextLSN - 1)
	return nil
}

// Size returns the total bytes currently held by the log's segments.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	var total int64
	for _, s := range w.segments[:max(0, len(w.segments)-1)] {
		if st, err := os.Stat(s.path); err == nil {
			total += st.Size()
		}
	}
	total += w.off
	return total
}

// Close fsyncs and closes every segment handle. The WAL must not be
// used afterwards.
func (w *WAL) Close() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	var first error
	if w.f != nil && w.Err() == nil {
		if err := w.f.Sync(); err != nil && first == nil {
			first = fmt.Errorf("storage: wal close sync: %w", err)
		} else {
			w.advanceDurable(w.nextLSN - 1)
		}
	}
	for i := range w.segments {
		if w.segments[i].f != nil {
			if err := w.segments[i].f.Close(); err != nil && first == nil {
				first = fmt.Errorf("storage: wal close: %w", err)
			}
			w.segments[i].f = nil
		}
	}
	return first
}

// OpenWAL opens an existing WAL directory, truncating a torn tail:
// the first record that fails validation marks the end of the log, the
// segment is cut there (fsynced), and any later segments are removed.
// The returned WAL appends after the last valid record.
func OpenWAL(dir string, policy SyncPolicy, segmentBytes int64) (*WAL, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return CreateWAL(dir, policy, segmentBytes)
	}
	w := newWAL(dir, policy, segmentBytes)
	lastLSN := segs[0].firstLSN - 1
	cut := -1 // index of the segment where the log ends
	var cutOff int64
	for i, s := range segs {
		data, err := os.ReadFile(s.path)
		if err != nil {
			return nil, fmt.Errorf("storage: wal open %s: %w", s.path, err)
		}
		if s.firstLSN != lastLSN+1 {
			// A gap between segments: everything from here on is
			// unreachable (e.g. leftovers of a crashed reset).
			cut = i - 1
			break
		}
		recs, validEnd, _ := scanSegment(data, s.firstLSN)
		if len(recs) > 0 {
			lastLSN = recs[len(recs)-1].LSN
		}
		if validEnd < len(data) || len(recs) == 0 && validEnd == walSegHeaderLen && i < len(segs)-1 {
			cut = i
			cutOff = int64(validEnd)
			break
		}
		cut = i
		cutOff = int64(validEnd)
	}
	if cut < 0 {
		return CreateWAL(dir, policy, segmentBytes)
	}
	// Drop segments after the cut, truncate the cut segment at the
	// last valid record, and reopen it for appending.
	for _, s := range segs[cut+1:] {
		if err := os.Remove(s.path); err != nil {
			return nil, fmt.Errorf("storage: wal open: drop %s: %w", s.path, err)
		}
	}
	s := segs[cut]
	f, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: wal open %s: %w", s.path, err)
	}
	if cutOff < walSegHeaderLen {
		cutOff = walSegHeaderLen
	}
	if err := f.Truncate(cutOff); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: wal truncate %s: %w", s.path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: wal open sync: %w", err)
	}
	for _, prev := range segs[:cut] {
		w.segments = append(w.segments, walSegment{index: prev.index, firstLSN: prev.firstLSN, path: prev.path})
	}
	w.segments = append(w.segments, walSegment{index: s.index, firstLSN: s.firstLSN, path: s.path, f: f})
	w.f = f
	w.off = cutOff
	w.nextLSN = lastLSN + 1
	w.appended.Store(lastLSN)
	w.durable.Store(lastLSN)
	return w, nil
}

type segmentInfo struct {
	index    uint64
	firstLSN uint64
	path     string
}

// listSegments enumerates the WAL directory's segment files in index
// order and reads their headers. Files that are not segments (or have
// torn headers) are ignored; a segment whose header is unreadable ends
// the list, like a torn record would.
func listSegments(dir string) ([]segmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("storage: wal list: %w", err)
	}
	var segs []segmentInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		idx, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		segs = append(segs, segmentInfo{index: idx, path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	out := segs[:0]
	for _, s := range segs {
		var hdr [walSegHeaderLen]byte
		f, err := os.Open(s.path)
		if err != nil {
			break
		}
		_, rerr := f.ReadAt(hdr[:], 0)
		f.Close()
		if rerr != nil || binary.LittleEndian.Uint64(hdr[0:8]) != walMagic {
			break
		}
		s.firstLSN = binary.LittleEndian.Uint64(hdr[8:16])
		out = append(out, s)
	}
	return out, nil
}

// scanSegment decodes records from a raw segment image. It returns the
// decoded records, the offset just past the last valid record, and
// whether the segment ended in a torn/corrupt record (false means it
// ended exactly at EOF).
func scanSegment(data []byte, firstLSN uint64) (recs []WALRecord, validEnd int, torn bool) {
	off := walSegHeaderLen
	expect := firstLSN
	for {
		if off+walRecOverhead > len(data) {
			return recs, off, off != len(data)
		}
		plen := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if plen > walMaxPayload || off+walRecOverhead+plen > len(data) {
			return recs, off, true
		}
		body := data[off : off+walRecHeaderLen+plen]
		want := binary.LittleEndian.Uint32(data[off+walRecHeaderLen+plen : off+walRecOverhead+plen])
		if crc32.Checksum(body, fsCRCTable) != want {
			return recs, off, true
		}
		lsn := binary.LittleEndian.Uint64(body[4:12])
		if lsn != expect {
			return recs, off, true
		}
		recs = append(recs, WALRecord{LSN: lsn, Type: WALRecordType(body[12]), Payload: body[walRecHeaderLen : walRecHeaderLen+plen]})
		expect++
		off += walRecOverhead + plen
	}
}

// ScanWALDir reads every valid record in a WAL directory without
// modifying it. torn reports whether the log ended in a torn or
// corrupt record (the usual crash signature) rather than exactly at a
// record boundary. A missing directory yields no records and no error.
func ScanWALDir(dir string) (recs []WALRecord, torn bool, err error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, false, err
	}
	lastLSN := uint64(0)
	for i, s := range segs {
		if i == 0 {
			lastLSN = s.firstLSN - 1
		}
		if s.firstLSN != lastLSN+1 {
			return recs, true, nil
		}
		data, err := os.ReadFile(s.path)
		if err != nil {
			return recs, true, nil
		}
		r, _, t := scanSegment(data, s.firstLSN)
		recs = append(recs, r...)
		if len(r) > 0 {
			lastLSN = r[len(r)-1].LSN
		}
		if t {
			return recs, true, nil
		}
	}
	return recs, torn, nil
}

// WALRecordEnds returns the byte offset just past each complete record
// of one segment-file image (the 16-byte segment header included), in
// order. The crash drills use it to truncate a log at every record
// boundary; it does not verify checksums.
func WALRecordEnds(data []byte) []int64 {
	var ends []int64
	if len(data) < walSegHeaderLen {
		return ends
	}
	off := int64(walSegHeaderLen)
	for {
		if off+walRecOverhead > int64(len(data)) {
			return ends
		}
		n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		end := off + walRecOverhead + n
		if n > walMaxPayload || end > int64(len(data)) {
			return ends
		}
		ends = append(ends, end)
		off = end
	}
}
