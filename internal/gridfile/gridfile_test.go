package gridfile

import (
	"math/rand"
	"testing"

	"ccam/internal/geom"
	"ccam/internal/graph"
	"ccam/internal/netfile"
)

func roadMap(t *testing.T) *graph.Network {
	t.Helper()
	g, err := graph.RoadMap(graph.MinneapolisLikeOpts())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func build(t *testing.T, g *graph.Network) *Method {
	t.Helper()
	m, err := New(Config{PageSize: 1024, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Build(g); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuildValidates(t *testing.T) {
	g := roadMap(t)
	m := build(t, g)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.File().NumNodes() != g.NumNodes() {
		t.Fatalf("nodes = %d, want %d", m.File().NumNodes(), g.NumNodes())
	}
	nx, ny := m.GridShape()
	if nx < 2 || ny < 2 {
		t.Fatalf("grid shape %dx%d too small for %d nodes", nx, ny, g.NumNodes())
	}
	if m.NumBuckets() < g.NumNodes()/20 {
		t.Fatalf("only %d buckets", m.NumBuckets())
	}
	t.Logf("grid %dx%d, %d buckets, CRR=%.4f", nx, ny, m.NumBuckets(),
		graph.CRR(g, m.File().Placement()))
}

func TestSpatialClusteringQuality(t *testing.T) {
	// Proximity clustering exploits the connectivity/proximity
	// correlation of road maps: CRR should land well above BFS-like
	// scatter but below connectivity clustering (paper: 0.54 at 1k).
	g := roadMap(t)
	m := build(t, g)
	crr := graph.CRR(g, m.File().Placement())
	if crr < 0.3 || crr > 0.75 {
		t.Fatalf("grid file CRR = %.4f, expected mid-range", crr)
	}
}

func TestPointQuery(t *testing.T) {
	g := roadMap(t)
	m := build(t, g)
	for _, id := range g.NodeIDs()[:25] {
		n, _ := g.Node(id)
		rec, err := m.PointQuery(n.Pos)
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil || rec.ID != id {
			t.Fatalf("PointQuery(%v) = %v, want node %d", n.Pos, rec, id)
		}
	}
	// A miss returns nil without error.
	rec, err := m.PointQuery(geom.Point{X: -1e9, Y: -1e9})
	if err != nil || rec != nil {
		t.Fatalf("miss = %v, %v", rec, err)
	}
}

func TestRangeQueryMatchesBruteForce(t *testing.T) {
	g := roadMap(t)
	m := build(t, g)
	b := g.Bounds()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		x1 := b.Min.X + rng.Float64()*b.Width()
		y1 := b.Min.Y + rng.Float64()*b.Height()
		rect := geom.NewRect(geom.Point{X: x1, Y: y1},
			geom.Point{X: x1 + rng.Float64()*b.Width()/3, Y: y1 + rng.Float64()*b.Height()/3})
		got, err := m.RangeQuery(rect)
		if err != nil {
			t.Fatal(err)
		}
		want := map[graph.NodeID]bool{}
		for _, id := range g.NodeIDs() {
			n, _ := g.Node(id)
			if rect.Contains(n.Pos) {
				want[id] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d records, want %d", trial, len(got), len(want))
		}
		for _, r := range got {
			if !want[r.ID] {
				t.Fatalf("trial %d: unexpected node %d", trial, r.ID)
			}
		}
	}
}

func TestInsertDeleteMaintainsInvariants(t *testing.T) {
	g := roadMap(t)
	m := build(t, g)
	ids := g.NodeIDs()
	rng := rand.New(rand.NewSource(3))
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, id := range ids[:40] {
		op, err := netfile.InsertOpFromNode(g, id)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Delete(id, netfile.FirstOrder); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
		if err := m.Insert(op, netfile.FirstOrder); err != nil {
			t.Fatalf("Insert(%d): %v", id, err)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.File().NumNodes() != g.NumNodes() {
		t.Fatalf("node count drifted")
	}
	// Records stay spatially placed: reinserted nodes are findable by
	// point query.
	for _, id := range ids[:10] {
		n, _ := g.Node(id)
		rec, err := m.PointQuery(n.Pos)
		if err != nil || rec == nil || rec.ID != id {
			t.Fatalf("PointQuery after reinsert: %v %v", rec, err)
		}
	}
}

func TestDeleteManyMergesEmptyBuckets(t *testing.T) {
	g := roadMap(t)
	m := build(t, g)
	before := m.NumBuckets()
	ids := g.NodeIDs()
	for _, id := range ids[:len(ids)*3/4] {
		if err := m.Delete(id, netfile.FirstOrder); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	after := m.NumBuckets()
	if after >= before {
		t.Fatalf("buckets did not shrink: %d -> %d", before, after)
	}
}

func TestSmallPageRejected(t *testing.T) {
	if _, err := New(Config{PageSize: 64}); err == nil {
		t.Fatal("tiny page size accepted")
	}
}

func TestUniformRandomPointsSplitEvenly(t *testing.T) {
	// A uniform cloud exercises repeated scale extension.
	g := graph.RandomGeometric(400, 0.9, geom.NewRect(geom.Point{X: 0, Y: 0}, geom.Point{X: 10, Y: 10}), 9)
	m, err := New(Config{PageSize: 512, PoolPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Build(g); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}
