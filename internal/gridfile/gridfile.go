// Package gridfile implements the Grid File of Nievergelt, Hinterberger
// and Sevcik — the spatial-proximity baseline of the paper's
// experiments. Two linear scales partition the plane into a grid of
// cells; a directory maps each cell to a data bucket (one disk page),
// and several cells may share a bucket as long as the bucket's region
// stays rectangular. Bucket overflow splits the bucket, extending a
// linear scale when the bucket spans a single cell; the directory is
// treated as memory resident, matching how the paper treats index
// structures.
package gridfile

import (
	"errors"
	"fmt"
	"sort"

	"ccam/internal/geom"
	"ccam/internal/graph"
	"ccam/internal/netfile"
	"ccam/internal/storage"
)

// Errors returned by grid file operations.
var (
	ErrUnsplittable = errors.New("gridfile: bucket cannot be split (identical coordinates)")
)

// bucket is one data page together with its rectangular cell region
// [x0,x1) × [y0,y1) in directory cell coordinates.
type bucket struct {
	pid            storage.PageID
	x0, x1, y0, y1 int
}

// Config parameterizes a grid file.
type Config struct {
	// PageSize is the disk block size in bytes.
	PageSize int
	// PoolPages is the buffer pool capacity (default 32).
	PoolPages int
	// Store optionally supplies the data page store.
	Store storage.Store
}

// Method is a grid file over the shared data file. It implements
// netfile.AccessMethod.
type Method struct {
	cfg    Config
	f      *netfile.File
	bounds geom.Rect
	// xScale and yScale hold the interior split coordinates, sorted.
	// With k splits there are k+1 cells on that axis.
	xScale, yScale []float64
	// dir maps cell (i,j) -> bucket; dir[i][j], i indexes x cells.
	dir [][]*bucket
	// byPage finds the bucket owning a data page.
	byPage map[storage.PageID]*bucket
}

var _ netfile.AccessMethod = (*Method)(nil)

// New returns an unbuilt grid file.
func New(cfg Config) (*Method, error) {
	if cfg.PageSize < 128 {
		return nil, fmt.Errorf("gridfile: page size %d too small", cfg.PageSize)
	}
	return &Method{cfg: cfg, byPage: make(map[storage.PageID]*bucket)}, nil
}

// Name implements netfile.AccessMethod.
func (m *Method) Name() string { return "grid-file" }

// File implements netfile.AccessMethod.
func (m *Method) File() *netfile.File { return m.f }

// NumBuckets returns the number of data buckets.
func (m *Method) NumBuckets() int { return len(m.byPage) }

// GridShape returns the directory dimensions (x cells, y cells).
func (m *Method) GridShape() (int, int) { return len(m.xScale) + 1, len(m.yScale) + 1 }

// Build implements netfile.AccessMethod: records are inserted one by
// one through the grid placement logic (their succ/pred lists are
// already complete, so no neighbor updates are needed).
func (m *Method) Build(g *graph.Network) error {
	f, err := netfile.Create(netfile.Options{
		PageSize:  m.cfg.PageSize,
		PoolPages: m.cfg.PoolPages,
		Bounds:    g.Bounds(),
		Store:     m.cfg.Store,
	})
	if err != nil {
		return err
	}
	m.f = f
	m.bounds = g.Bounds()
	pid, err := m.f.AllocatePage()
	if err != nil {
		return err
	}
	root := &bucket{pid: pid, x0: 0, x1: 1, y0: 0, y1: 1}
	m.dir = [][]*bucket{{root}}
	m.byPage[pid] = root

	for _, id := range g.NodeIDs() {
		rec, err := netfile.RecordFromNode(g, id)
		if err != nil {
			return err
		}
		if err := m.place(rec); err != nil {
			return fmt.Errorf("gridfile: build at node %d: %w", id, err)
		}
	}
	return m.f.Flush()
}

// cellIndex returns the directory cell containing p.
func (m *Method) cellIndex(p geom.Point) (int, int) {
	i := sort.SearchFloat64s(m.xScale, p.X)
	// SearchFloat64s returns the first index with scale >= p.X; points
	// exactly on a boundary belong to the right cell, which matches
	// the half-open region convention.
	if i < len(m.xScale) && m.xScale[i] == p.X {
		i++
	}
	j := sort.SearchFloat64s(m.yScale, p.Y)
	if j < len(m.yScale) && m.yScale[j] == p.Y {
		j++
	}
	return i, j
}

// bucketFor returns the bucket owning point p.
func (m *Method) bucketFor(p geom.Point) *bucket {
	i, j := m.cellIndex(p)
	return m.dir[i][j]
}

// place inserts rec into its spatial bucket, splitting on overflow.
func (m *Method) place(rec *netfile.Record) error {
	for attempt := 0; attempt < 64; attempt++ {
		b := m.bucketFor(rec.Pos)
		err := m.f.InsertRecordAt(rec, b.pid)
		if err == nil {
			return nil
		}
		if !errors.Is(err, storage.ErrPageFull) {
			return err
		}
		// Include the incoming record's position in the split decision:
		// a bucket holding a single fat record is otherwise
		// unsplittable.
		if err := m.splitBucket(b, rec); err != nil {
			return err
		}
	}
	return fmt.Errorf("gridfile: giving up splitting for record %d", rec.ID)
}

// splitBucket divides b in two. If b spans multiple cells on an axis,
// the directory is untouched and the cells are divided between b and a
// new bucket. Otherwise a new boundary is added to a linear scale (the
// directory grows a row or column) and then the two resulting cells are
// divided. Records are redistributed by position. An optional incoming
// record (not yet stored) contributes its position to the choice of
// split coordinate.
func (m *Method) splitBucket(b *bucket, incoming *netfile.Record) error {
	recs, err := m.f.RecordsOnPage(b.pid)
	if err != nil {
		return err
	}
	coordRecs := recs
	if incoming != nil {
		coordRecs = append(append([]*netfile.Record(nil), recs...), incoming)
	}
	// Choose split axis: prefer the axis where the bucket spans more
	// cells; when both span one cell, the axis with larger coordinate
	// spread among records.
	axisX := true
	switch {
	case b.x1-b.x0 > 1:
		axisX = true
	case b.y1-b.y0 > 1:
		axisX = false
	default:
		axisX = spreadX(coordRecs) >= spreadY(coordRecs)
		if err := m.addScaleSplit(b, axisX, coordRecs); err != nil {
			if !errors.Is(err, ErrUnsplittable) {
				return err
			}
			// Try the other axis.
			axisX = !axisX
			if err := m.addScaleSplit(b, axisX, coordRecs); err != nil {
				return err
			}
		}
	}
	// b now spans at least two cells on the chosen axis; divide them.
	newPid, err := m.f.AllocatePage()
	if err != nil {
		return err
	}
	nb := &bucket{pid: newPid}
	if axisX {
		mid := (b.x0 + b.x1) / 2
		*nb = bucket{pid: newPid, x0: mid, x1: b.x1, y0: b.y0, y1: b.y1}
		b.x1 = mid
	} else {
		mid := (b.y0 + b.y1) / 2
		*nb = bucket{pid: newPid, x0: b.x0, x1: b.x1, y0: mid, y1: b.y1}
		b.y1 = mid
	}
	m.byPage[newPid] = nb
	for i := nb.x0; i < nb.x1; i++ {
		for j := nb.y0; j < nb.y1; j++ {
			m.dir[i][j] = nb
		}
	}
	// Redistribute records of the old page by position.
	for _, rec := range recs {
		if m.bucketFor(rec.Pos) == nb {
			if err := m.f.MoveRecord(rec.ID, newPid); err != nil {
				return fmt.Errorf("gridfile: redistribute %d: %w", rec.ID, err)
			}
		}
	}
	return nil
}

// addScaleSplit inserts a new boundary through single-cell bucket b on
// the chosen axis at the median record coordinate, growing the
// directory by one row or column.
func (m *Method) addScaleSplit(b *bucket, axisX bool, recs []*netfile.Record) error {
	coords := make([]float64, 0, len(recs))
	for _, r := range recs {
		if axisX {
			coords = append(coords, r.Pos.X)
		} else {
			coords = append(coords, r.Pos.Y)
		}
	}
	sort.Float64s(coords)
	split := coords[len(coords)/2]
	if split == coords[0] {
		// Median equals minimum: a boundary at split would put
		// everything on one side. Try the max midpoint instead.
		if coords[len(coords)-1] == coords[0] {
			return fmt.Errorf("%w on axisX=%v", ErrUnsplittable, axisX)
		}
		split = (coords[0] + coords[len(coords)-1]) / 2
	}
	if axisX {
		cell := b.x0 // single-cell bucket
		m.xScale = insertSorted(m.xScale, split)
		// Grow the directory: duplicate column `cell`.
		newDir := make([][]*bucket, len(m.dir)+1)
		copy(newDir, m.dir[:cell+1])
		dup := make([]*bucket, len(m.dir[cell]))
		copy(dup, m.dir[cell])
		newDir[cell+1] = dup
		copy(newDir[cell+2:], m.dir[cell+1:])
		m.dir = newDir
		// Shift every bucket's x range to account for the new column.
		for _, bk := range m.byPage {
			if bk.x0 > cell {
				bk.x0++
			}
			if bk.x1 > cell {
				bk.x1++
			}
		}
		// b itself covered the split cell; it now spans two columns.
		// (bk.x1 > cell already bumped b.x1 from cell+1 to cell+2.)
	} else {
		cell := b.y0
		m.yScale = insertSorted(m.yScale, split)
		for i := range m.dir {
			col := m.dir[i]
			newCol := make([]*bucket, len(col)+1)
			copy(newCol, col[:cell+1])
			newCol[cell+1] = col[cell]
			copy(newCol[cell+2:], col[cell+1:])
			m.dir[i] = newCol
		}
		for _, bk := range m.byPage {
			if bk.y0 > cell {
				bk.y0++
			}
			if bk.y1 > cell {
				bk.y1++
			}
		}
	}
	return nil
}

func insertSorted(s []float64, v float64) []float64 {
	i := sort.SearchFloat64s(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func spreadX(recs []*netfile.Record) float64 {
	if len(recs) == 0 {
		return 0
	}
	lo, hi := recs[0].Pos.X, recs[0].Pos.X
	for _, r := range recs[1:] {
		if r.Pos.X < lo {
			lo = r.Pos.X
		}
		if r.Pos.X > hi {
			hi = r.Pos.X
		}
	}
	return hi - lo
}

func spreadY(recs []*netfile.Record) float64 {
	if len(recs) == 0 {
		return 0
	}
	lo, hi := recs[0].Pos.Y, recs[0].Pos.Y
	for _, r := range recs[1:] {
		if r.Pos.Y < lo {
			lo = r.Pos.Y
		}
		if r.Pos.Y > hi {
			hi = r.Pos.Y
		}
	}
	return hi - lo
}

// Insert implements netfile.AccessMethod: the record is placed by
// spatial position, then neighbor lists are updated; overflowing
// neighbor pages split through the grid machinery. The policy argument
// is ignored (grid files reorganize by bucket splitting only).
func (m *Method) Insert(op *netfile.InsertOp, _ netfile.Policy) error {
	if err := op.Validate(); err != nil {
		return err
	}
	if m.f == nil {
		return errors.New("gridfile: insert before Build")
	}
	if err := m.place(op.Rec); err != nil {
		return err
	}
	return m.f.UpdateNeighborLinks(op, m.splitByPage)
}

// Delete implements netfile.AccessMethod. Bucket merging (the grid
// file's buddy-system deletion) is deliberately lazy: empty buckets
// whose region can be absorbed by a directory neighbor are merged,
// others remain (delayed reorganization).
func (m *Method) Delete(id graph.NodeID, _ netfile.Policy) error {
	if m.f == nil {
		return errors.New("gridfile: delete before Build")
	}
	pid, err := m.f.PageOf(id)
	if err != nil {
		return err
	}
	rec, err := m.f.DeleteRecord(id)
	if err != nil {
		return err
	}
	if err := m.f.RemoveNeighborLinks(rec); err != nil {
		return err
	}
	used, err := m.f.UsedBytesOn(pid)
	if err != nil {
		return err
	}
	if used == 0 {
		m.mergeEmptyBucket(pid)
	}
	return nil
}

// mergeEmptyBucket absorbs an empty bucket's region into an adjacent
// bucket when the union stays rectangular, freeing the page.
func (m *Method) mergeEmptyBucket(pid storage.PageID) {
	b, ok := m.byPage[pid]
	if !ok {
		return
	}
	for _, nb := range m.byPage {
		if nb == b {
			continue
		}
		merged, ok := unionRect(b, nb)
		if !ok {
			continue
		}
		nb.x0, nb.x1, nb.y0, nb.y1 = merged.x0, merged.x1, merged.y0, merged.y1
		for i := b.x0; i < b.x1; i++ {
			for j := b.y0; j < b.y1; j++ {
				m.dir[i][j] = nb
			}
		}
		delete(m.byPage, pid)
		m.f.FreePage(pid)
		return
	}
}

// unionRect returns the union of two bucket regions when it is a
// rectangle (the buckets are buddies).
func unionRect(a, b *bucket) (bucket, bool) {
	if a.y0 == b.y0 && a.y1 == b.y1 {
		if a.x1 == b.x0 {
			return bucket{x0: a.x0, x1: b.x1, y0: a.y0, y1: a.y1}, true
		}
		if b.x1 == a.x0 {
			return bucket{x0: b.x0, x1: a.x1, y0: a.y0, y1: a.y1}, true
		}
	}
	if a.x0 == b.x0 && a.x1 == b.x1 {
		if a.y1 == b.y0 {
			return bucket{x0: a.x0, x1: a.x1, y0: a.y0, y1: b.y1}, true
		}
		if b.y1 == a.y0 {
			return bucket{x0: a.x0, x1: a.x1, y0: b.y0, y1: a.y1}, true
		}
	}
	return bucket{}, false
}

// splitByPage splits the bucket owning page pid (overflow handler for
// neighbor-list growth).
func (m *Method) splitByPage(pid storage.PageID) error {
	b, ok := m.byPage[pid]
	if !ok {
		return fmt.Errorf("gridfile: page %d has no bucket", pid)
	}
	return m.splitBucket(b, nil)
}

// PointQuery returns the record at exactly p (nil if the bucket holds
// no node at that position). One bucket access, as the grid file
// promises.
func (m *Method) PointQuery(p geom.Point) (*netfile.Record, error) {
	b := m.bucketFor(p)
	recs, err := m.f.RecordsOnPage(b.pid)
	if err != nil {
		return nil, err
	}
	for _, r := range recs {
		if r.Pos == p {
			return r, nil
		}
	}
	return nil, nil
}

// RangeQuery returns all records with positions inside rect, touching
// only the buckets whose regions intersect the query.
func (m *Method) RangeQuery(rect geom.Rect) ([]*netfile.Record, error) {
	seen := map[storage.PageID]bool{}
	var out []*netfile.Record
	for _, b := range m.bucketsIntersecting(rect) {
		if seen[b.pid] {
			continue
		}
		seen[b.pid] = true
		recs, err := m.f.RecordsOnPage(b.pid)
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			if rect.Contains(r.Pos) {
				out = append(out, r)
			}
		}
	}
	return out, nil
}

// bucketsIntersecting returns the buckets whose cell regions intersect
// rect.
func (m *Method) bucketsIntersecting(rect geom.Rect) []*bucket {
	i0, j0 := m.cellIndex(rect.Min)
	i1, j1 := m.cellIndex(rect.Max)
	seen := map[*bucket]bool{}
	var out []*bucket
	for i := i0; i <= i1 && i < len(m.dir); i++ {
		for j := j0; j <= j1 && j < len(m.dir[i]); j++ {
			b := m.dir[i][j]
			if !seen[b] {
				seen[b] = true
				out = append(out, b)
			}
		}
	}
	return out
}

// Validate checks grid file invariants: the directory tiles the plane
// with the registered buckets and every record lies inside its bucket's
// region. Intended for tests.
func (m *Method) Validate() error {
	nx, ny := m.GridShape()
	if len(m.dir) != nx {
		return fmt.Errorf("gridfile: directory has %d columns, scales imply %d", len(m.dir), nx)
	}
	for i := range m.dir {
		if len(m.dir[i]) != ny {
			return fmt.Errorf("gridfile: column %d has %d cells, scales imply %d", i, len(m.dir[i]), ny)
		}
		for j, b := range m.dir[i] {
			if b == nil {
				return fmt.Errorf("gridfile: cell (%d,%d) has no bucket", i, j)
			}
			if i < b.x0 || i >= b.x1 || j < b.y0 || j >= b.y1 {
				return fmt.Errorf("gridfile: cell (%d,%d) outside its bucket region [%d,%d)x[%d,%d)",
					i, j, b.x0, b.x1, b.y0, b.y1)
			}
			if m.byPage[b.pid] != b {
				return fmt.Errorf("gridfile: bucket of page %d not registered", b.pid)
			}
		}
	}
	for pid, b := range m.byPage {
		recs, err := m.f.RecordsOnPage(pid)
		if err != nil {
			return err
		}
		for _, r := range recs {
			if got := m.bucketFor(r.Pos); got != b {
				return fmt.Errorf("gridfile: record %d stored in page %d but position maps to page %d",
					r.ID, pid, got.pid)
			}
		}
	}
	return nil
}

// InsertEdge implements netfile.AccessMethod: the records of both
// endpoints are updated in place; overflow splits the owning bucket.
func (m *Method) InsertEdge(from, to graph.NodeID, cost float32, _ netfile.Policy) error {
	if m.f == nil {
		return errors.New("gridfile: insert edge before Build")
	}
	return m.f.AddEdgeRecords(from, to, cost, m.splitByPage)
}

// DeleteEdge implements netfile.AccessMethod.
func (m *Method) DeleteEdge(from, to graph.NodeID, _ netfile.Policy) error {
	if m.f == nil {
		return errors.New("gridfile: delete edge before Build")
	}
	return m.f.RemoveEdgeRecords(from, to)
}
