// Package costmodel implements the paper's algebraic cost models
// (Section 3, Tables 3 and 4): the expected number of data-page
// accesses of each network operation as a function of
//
//	α (alpha)  — the CRR, Pr[Page(i) == Page(j)] for an edge (i,j)
//	|A|        — the average successor-list length
//	λ (lambda) — the average neighbor-list length
//	γ (gamma)  — the average blocking factor (records per page)
//	L          — the number of nodes in a route
//
// Update-operation totals follow the paper's simplifying assumption
// that the Write cost equals the Read cost ("To simplify our
// comparison, we assume they are the same"), which is exactly how the
// predicted Delete values of Table 5 are derived: predicted =
// 2 × (1 + λ(1−α)).
package costmodel

// Params carries the network/file statistics the model needs.
type Params struct {
	Alpha  float64 // CRR
	AvgA   float64 // |A|, mean successor-list length
	Lambda float64 // λ, mean neighbor-list length
	Gamma  float64 // γ, blocking factor (records per data page)
}

// GetSuccessors returns the expected data-page accesses of
// Get-successors(): (1−α)·|A|, assuming the page containing the node is
// already in memory (Table 3).
func GetSuccessors(p Params) float64 {
	return (1 - p.Alpha) * p.AvgA
}

// GetASuccessor returns the expected data-page accesses of
// Get-A-successor(): 1−α (Table 3).
func GetASuccessor(p Params) float64 {
	return 1 - p.Alpha
}

// RouteEvaluation returns the expected data-page accesses of evaluating
// a route over L nodes with a one-page buffer: 1 + (L−1)(1−α)
// (Table 3).
func RouteEvaluation(p Params, l int) float64 {
	if l < 1 {
		return 0
	}
	return 1 + float64(l-1)*(1-p.Alpha)
}

// Policy mirrors the reorganization policy tiers of Table 4.
type Policy int

// Policies.
const (
	FirstOrder Policy = iota
	SecondOrder
	HigherOrder
)

// InsertReads returns the worst-case retrieval (read) cost of Insert()
// under the given policy (Table 4): λ for first/second order,
// λ + γλ(1−α) for higher order.
func InsertReads(p Params, policy Policy) float64 {
	switch policy {
	case HigherOrder:
		return p.Lambda + p.Gamma*p.Lambda*(1-p.Alpha)
	default:
		return p.Lambda
	}
}

// DeleteReads returns the worst-case retrieval (read) cost of Delete()
// under the given policy (Table 4): 1 + λ(1−α) for first/second order,
// γλ(1−α) for higher order.
func DeleteReads(p Params, policy Policy) float64 {
	switch policy {
	case HigherOrder:
		return p.Gamma * p.Lambda * (1 - p.Alpha)
	default:
		return 1 + p.Lambda*(1-p.Alpha)
	}
}

// InsertTotal returns the read+write cost of Insert() under the
// equal-write-cost assumption used for Table 5's predictions.
func InsertTotal(p Params, policy Policy) float64 {
	return 2 * InsertReads(p, policy)
}

// DeleteTotal returns the read+write cost of Delete() under the
// equal-write-cost assumption used for Table 5's predictions: for the
// first/second-order policies this is 2(1 + λ(1−α)), which reproduces
// the paper's predicted Delete column exactly (e.g. α = 0.7606,
// λ = 3.20 → 3.532).
func DeleteTotal(p Params, policy Policy) float64 {
	return 2 * DeleteReads(p, policy)
}
