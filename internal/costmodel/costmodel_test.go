package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

// paperParams are the measured statistics of the paper's Minneapolis
// experiments (Table 5 footer): |A| = 2.833, λ = 3.20, γ = 12.55.
func paperParams(alpha float64) Params {
	return Params{Alpha: alpha, AvgA: 2.833, Lambda: 3.20, Gamma: 12.55}
}

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.4f, want %.4f (±%.4f)", name, got, want, tol)
	}
}

// TestReproducesPaperTable5Predictions checks the model against every
// "Predicted" cell of the paper's Table 5.
func TestReproducesPaperTable5Predictions(t *testing.T) {
	cases := []struct {
		method                  string
		alpha                   float64
		getSuccs, getASucc, del float64
		delTol                  float64
	}{
		{"CCAM", 0.7606, 0.680, 0.239, 3.532, 0.005},
		{"DFS-AM", 0.6088, 1.108, 0.391, 4.504, 0.005},
		{"GridFile", 0.5414, 1.300, 0.459, 4.935, 0.005},
		// The BFS-AM row of the paper carries an extra rounding step in
		// its printed α (0.0981); the model lands within 0.05.
		{"BFS-AM", 0.0981, 2.555, 0.902, 7.732, 0.05},
	}
	for _, c := range cases {
		p := paperParams(c.alpha)
		approx(t, c.method+" Get-successors", GetSuccessors(p), c.getSuccs, 0.005)
		approx(t, c.method+" Get-A-successor", GetASuccessor(p), c.getASucc, 0.005)
		approx(t, c.method+" Delete", DeleteTotal(p, SecondOrder), c.del, c.delTol)
	}
}

func TestRouteEvaluation(t *testing.T) {
	p := paperParams(0.75)
	approx(t, "route L=1", RouteEvaluation(p, 1), 1, 1e-12)
	approx(t, "route L=20", RouteEvaluation(p, 20), 1+19*0.25, 1e-12)
	if RouteEvaluation(p, 0) != 0 {
		t.Error("L=0 should cost 0")
	}
}

func TestPolicyCosts(t *testing.T) {
	p := paperParams(0.75)
	if InsertReads(p, FirstOrder) != InsertReads(p, SecondOrder) {
		t.Error("first and second order insert reads must match (Table 4)")
	}
	if InsertReads(p, HigherOrder) <= InsertReads(p, FirstOrder) {
		t.Error("higher order insert must cost more")
	}
	if DeleteReads(p, FirstOrder) != DeleteReads(p, SecondOrder) {
		t.Error("first and second order delete reads must match (Table 4)")
	}
	approx(t, "higher-order delete", DeleteReads(p, HigherOrder), 12.55*3.2*0.25, 1e-9)
	approx(t, "insert total", InsertTotal(p, FirstOrder), 2*3.2, 1e-12)
}

func TestMonotoneInAlpha(t *testing.T) {
	// All CRR-driven costs decrease as alpha increases.
	f := func(a1, a2 float64) bool {
		a1 = math.Mod(math.Abs(a1), 1)
		a2 = math.Mod(math.Abs(a2), 1)
		if a1 > a2 {
			a1, a2 = a2, a1
		}
		lo, hi := paperParams(a2), paperParams(a1)
		return GetSuccessors(lo) <= GetSuccessors(hi) &&
			GetASuccessor(lo) <= GetASuccessor(hi) &&
			RouteEvaluation(lo, 30) <= RouteEvaluation(hi, 30) &&
			DeleteTotal(lo, SecondOrder) <= DeleteTotal(hi, SecondOrder)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInsertIndependentOfAlphaForLowOrders(t *testing.T) {
	// "The cost of the Insert() operation cannot be predicted from the
	// CRR" — first/second order insert reads depend only on λ.
	a := InsertReads(paperParams(0.1), SecondOrder)
	b := InsertReads(paperParams(0.9), SecondOrder)
	if a != b {
		t.Errorf("insert reads vary with alpha: %f vs %f", a, b)
	}
}
