package wire

import (
	"bytes"
	"encoding/hex"
	"errors"
	"testing"

	"ccam"
)

// The extended (v7) request frame is a stable wire contract; pin its
// exact bytes.
func TestGoldenExtendedRequestFrame(t *testing.T) {
	h := ReqHeader{
		ID: 0x0B, Op: OpFind, DeadlineMS: 250,
		TraceID: 0xABCD, Sampled: true, WantStats: true,
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, EncodeRequestHeader(h, EncodeIDBody(7))); err != nil {
		t.Fatal(err)
	}
	const want = "16000000" + // frame length 22
		"0b000000" + // request id 11
		"81" + // op find | extended-header bit
		"fa000000" + // deadline 250ms
		"03" + // flags: sampled | want-stats
		"cdab000000000000" + // trace id 0xABCD
		"07000000" // node id 7
	if got := hex.EncodeToString(buf.Bytes()); got != want {
		t.Fatalf("golden extended frame mismatch:\n got %s\nwant %s", got, want)
	}
	gotH, body, err := DecodeRequestHeader(buf.Bytes()[4:])
	if err != nil || gotH != h {
		t.Fatalf("DecodeRequestHeader = (%+v, _, %v), want %+v", gotH, err, h)
	}
	if nid, err := DecodeIDBody(body); err != nil || nid != 7 {
		t.Fatalf("extended body: id=%d err=%v", nid, err)
	}
}

// A v6 frame (no trace field) must keep decoding unchanged — the op
// byte's high bit is the only discriminator.
func TestV6RequestFrameBackwardCompat(t *testing.T) {
	payload := EncodeRequest(0x0B, OpFind, 250, EncodeIDBody(7))
	h, body, err := DecodeRequestHeader(payload)
	if err != nil {
		t.Fatal(err)
	}
	want := ReqHeader{ID: 0x0B, Op: OpFind, DeadlineMS: 250}
	if h != want {
		t.Fatalf("v6 header decoded as %+v, want %+v", h, want)
	}
	if nid, err := DecodeIDBody(body); err != nil || nid != 7 {
		t.Fatalf("v6 body: id=%d err=%v", nid, err)
	}
	// A header without trace context re-encodes to the identical v6
	// bytes: old servers keep understanding quiet clients.
	if got := EncodeRequestHeader(want, EncodeIDBody(7)); !bytes.Equal(got, payload) {
		t.Fatalf("plain header encoded as %x, want v6 bytes %x", got, payload)
	}
	// Truncated extended header errors instead of mis-slicing.
	bad := append([]byte(nil), payload[:reqHeaderSize]...)
	bad[4] |= opExtFlag
	if _, _, err := DecodeRequestHeader(bad); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("truncated extended header: %v", err)
	}
}

func TestStatsBlockRoundTrip(t *testing.T) {
	rs := &ccam.ReqStats{
		DataReads: 12, DataWrites: 3, IndexPages: 5,
		BufferHits: 10, BufferMisses: 2, WALWaitNs: 1234567, Ops: 4, Shed: true,
	}

	// OK response: stats ride ahead of the body.
	payload := EncodeOKResponseStats(0x0B, EncodeBoolBody(true), rs)
	id, body, got, err := DecodeResponseStats(payload)
	if err != nil || id != 0x0B {
		t.Fatalf("DecodeResponseStats = (%d, _, _, %v)", id, err)
	}
	if got == nil || *got != *rs {
		t.Fatalf("stats round trip: got %+v want %+v", got, rs)
	}
	if v, err := DecodeBoolBody(body); err != nil || !v {
		t.Fatalf("body after stats: %v err=%v", v, err)
	}

	// The same payload through the stats-unaware decoder: body intact,
	// stats dropped.
	id, body, err = DecodeResponse(payload)
	if err != nil || id != 0x0B {
		t.Fatalf("DecodeResponse = (%d, _, %v)", id, err)
	}
	if v, err := DecodeBoolBody(body); err != nil || !v {
		t.Fatalf("plain decode body: %v err=%v", v, err)
	}

	// Error response: stats travel too, and errors.Is still works — a
	// shed request reports Shed this way.
	ep := EncodeErrResponseStats(7, ccam.ErrOverloaded, &ccam.ReqStats{Shed: true})
	id, _, got, err = DecodeResponseStats(ep)
	if id != 7 || !errors.Is(err, ccam.ErrOverloaded) {
		t.Fatalf("error with stats: id=%d err=%v", id, err)
	}
	if got == nil || !got.Shed {
		t.Fatalf("shed flag lost: %+v", got)
	}

	// A longer (future) block decodes its known prefix.
	longer := append(EncodeStatsBlock(rs), 0xFF, 0xFF)
	got2, err := DecodeStatsBlock(longer)
	if err != nil || *got2 != *rs {
		t.Fatalf("extended stats block: %+v err=%v", got2, err)
	}

	// nil stats fall back to the plain encodings byte-for-byte.
	if !bytes.Equal(EncodeOKResponseStats(1, nil, nil), EncodeOKResponse(1, nil)) {
		t.Fatal("nil-stats OK response differs from plain form")
	}
	if !bytes.Equal(EncodeErrResponseStats(1, ccam.ErrNotFound, nil), EncodeErrResponse(1, ccam.ErrNotFound)) {
		t.Fatal("nil-stats error response differs from plain form")
	}
}
