package wire

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"

	"ccam"
)

// Every exported sentinel a served query can surface, with its
// expected stable code.
var sentinelCases = []struct {
	name string
	err  error
	code Code
}{
	{"not_found", ccam.ErrNotFound, CodeNotFound},
	{"node_exists", ccam.ErrNodeExists, CodeNodeExists},
	{"edge_exists", ccam.ErrEdgeExists, CodeEdgeExists},
	{"edge_missing", ccam.ErrEdgeMissing, CodeEdgeMissing},
	{"canceled", context.Canceled, CodeCanceled},
	{"deadline_exceeded", context.DeadlineExceeded, CodeDeadline},
	{"overloaded", ccam.ErrOverloaded, CodeOverloaded},
	{"closed", ccam.ErrClosed, CodeClosed},
	{"checksum", ccam.ErrChecksum, CodeChecksum},
	{"corrupted", ccam.ErrCorruptedPage, CodeCorrupted},
	{"no_path", ccam.ErrNoPath, CodeNoPath},
	{"invalid_tour", ccam.ErrInvalidTour, CodeInvalidTour},
	{"parse_error", ccam.ErrQueryParse, CodeParse},
	{"unsupported_query", ccam.ErrQueryUnsupported, CodeUnsupported},
	{"bad_request", ErrBadRequest, CodeBadRequest},
	{"internal", ErrInternal, CodeInternal},
}

func TestCodeTable(t *testing.T) {
	for _, tc := range sentinelCases {
		if got := CodeOf(tc.err); got != tc.code {
			t.Errorf("CodeOf(%v) = %v, want %v", tc.err, got, tc.code)
		}
		if got := tc.code.String(); got != tc.name {
			t.Errorf("%v.String() = %q, want %q", tc.code, got, tc.name)
		}
		if got := CodeFromName(tc.name); got != tc.code {
			t.Errorf("CodeFromName(%q) = %v, want %v", tc.name, got, tc.code)
		}
		if st := tc.code.HTTPStatus(); st < 400 || st > 599 {
			t.Errorf("%v.HTTPStatus() = %d, not an error status", tc.code, st)
		}
	}
	if CodeOf(nil) != CodeOK {
		t.Error("CodeOf(nil) != CodeOK")
	}
	if CodeOf(errors.New("mystery")) != CodeInternal {
		t.Error("unknown error did not classify as internal")
	}
	if CodeOK.HTTPStatus() != 200 {
		t.Error("CodeOK status != 200")
	}
	// Wrapped sentinels classify like the sentinel itself.
	wrapped := errors.Join(errors.New("page 7"), ccam.ErrChecksum)
	if CodeOf(wrapped) != CodeChecksum {
		t.Errorf("wrapped checksum error classified as %v", CodeOf(wrapped))
	}
}

// The satellite's core contract: errors.Is against the original
// sentinel survives a client-side decode, on both protocols.
func TestErrorsIsSurvivesRoundTrip(t *testing.T) {
	for _, tc := range sentinelCases {
		// Binary: server encodes the live error, client decodes the frame.
		payload := EncodeErrResponse(42, tc.err)
		id, body, err := DecodeResponse(payload)
		if id != 42 || body != nil || err == nil {
			t.Fatalf("%s: DecodeResponse = (%d, %v, %v)", tc.name, id, body, err)
		}
		if !errors.Is(err, tc.err) {
			t.Errorf("%s: binary round trip lost errors.Is (got %v)", tc.name, err)
		}
		// JSON: server writes the ErrorResponse body, client decodes it.
		raw, merr := json.Marshal(ErrorResponse{Error: ErrorJSON{
			Code:    CodeOf(tc.err).String(),
			Message: tc.err.Error(),
		}})
		if merr != nil {
			t.Fatal(merr)
		}
		jerr := DecodeErrorResponse(raw, CodeOf(tc.err).HTTPStatus())
		if !errors.Is(jerr, tc.err) {
			t.Errorf("%s: JSON round trip lost errors.Is (got %v)", tc.name, jerr)
		}
		// The decoded error also matches the code directly.
		var we *Error
		if !errors.As(err, &we) || we.Code != tc.code {
			t.Errorf("%s: decoded error has code %v, want %v", tc.name, we.Code, tc.code)
		}
	}
}

func TestDecodeErrorResponseMalformed(t *testing.T) {
	err := DecodeErrorResponse([]byte("not json at all"), 500)
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("malformed body decoded to %v, want internal", err)
	}
}

func testRecord() *ccam.Record {
	return &ccam.Record{
		ID:    7,
		Pos:   ccam.Point{X: 1.5, Y: -2.25},
		Attrs: []byte{0xDE, 0xAD},
		Succs: []ccam.SuccEntry{{To: 8, Cost: 3.5}, {To: 9, Cost: 1.25}},
		Preds: []ccam.NodeID{3},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := EncodeRequest(11, OpFind, 250, EncodeIDBody(7))
	if err := WriteFrame(&buf, req); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	id, op, dl, body, err := DecodeRequest(got)
	if err != nil || id != 11 || op != OpFind || dl != 250 {
		t.Fatalf("DecodeRequest = (%d, %v, %d, _, %v)", id, op, dl, err)
	}
	nid, err := DecodeIDBody(body)
	if err != nil || nid != 7 {
		t.Fatalf("DecodeIDBody = (%d, %v)", nid, err)
	}
}

// The binary request frame is a stable wire contract; pin its exact
// bytes.
func TestGoldenRequestFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, EncodeRequest(0x0B, OpFind, 250, EncodeIDBody(7))); err != nil {
		t.Fatal(err)
	}
	const want = "0d000000" + // frame length 13
		"0b000000" + // request id 11
		"01" + // op find
		"fa000000" + // deadline 250ms
		"07000000" // node id 7
	if got := hex.EncodeToString(buf.Bytes()); got != want {
		t.Fatalf("golden frame mismatch:\n got %s\nwant %s", got, want)
	}
}

func TestGoldenResponseFrames(t *testing.T) {
	ok := EncodeOKResponse(0x0B, EncodeBoolBody(true))
	if got, want := hex.EncodeToString(ok), "0b000000"+"00"+"01"; got != want {
		t.Fatalf("ok response: got %s want %s", got, want)
	}
	er := EncodeErrResponse(0x0B, ccam.ErrOverloaded)
	wantPrefix := "0b000000" + "07" // id + CodeOverloaded
	if got := hex.EncodeToString(er[:5]); got != wantPrefix {
		t.Fatalf("error response header: got %s want %s", got, wantPrefix)
	}
	if msgLen := binary.LittleEndian.Uint16(er[5:7]); int(msgLen) != len(ccam.ErrOverloaded.Error()) {
		t.Fatalf("error message length %d", msgLen)
	}
}

func TestReadFrameLimits(t *testing.T) {
	var pfx [4]byte
	binary.LittleEndian.PutUint32(pfx[:], MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(pfx[:])); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("oversized frame: %v", err)
	}
	if _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: %v", err)
	}
	// Announced 8 bytes, delivered 2.
	short := append(binary.LittleEndian.AppendUint32(nil, 8), 1, 2)
	if _, err := ReadFrame(bytes.NewReader(short)); err != io.ErrUnexpectedEOF {
		t.Fatalf("short frame: %v", err)
	}
}

func TestRecordBodyRoundTrip(t *testing.T) {
	rec := testRecord()
	got, err := DecodeRecordBody(EncodeRecordBody(rec))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("record round trip: got %+v want %+v", got, rec)
	}
	recs := []*ccam.Record{rec, {ID: 2, Pos: ccam.Point{X: 4, Y: 4}}}
	got2, err := DecodeRecordsBody(EncodeRecordsBody(recs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 2 || !reflect.DeepEqual(got2[0], recs[0]) || got2[1].ID != 2 {
		t.Fatalf("records round trip: %+v", got2)
	}
}

func TestScalarBodiesRoundTrip(t *testing.T) {
	ids := []ccam.NodeID{1, 99, 7}
	gotIDs, rest, err := DecodeIDsBody(EncodeIDsBody(ids))
	if err != nil || len(rest) != 0 || !reflect.DeepEqual(gotIDs, ids) {
		t.Fatalf("ids: %v rest=%d err=%v", gotIDs, len(rest), err)
	}
	rect := ccam.NewRect(ccam.Point{X: -1, Y: 2}, ccam.Point{X: 3, Y: 4.5})
	gotRect, err := DecodeRectBody(EncodeRectBody(rect))
	if err != nil || gotRect != rect {
		t.Fatalf("rect: %v err=%v", gotRect, err)
	}
	routes := []ccam.Route{{1, 2, 3}, {9}}
	gotRoutes, err := DecodeRoutesBody(EncodeRoutesBody(routes))
	if err != nil || !reflect.DeepEqual(gotRoutes, routes) {
		t.Fatalf("routes: %v err=%v", gotRoutes, err)
	}
	agg := ccam.RouteAggregate{Nodes: 3, TotalCost: 6.5, MinCost: 1, MaxCost: 4}
	gotAgg, err := DecodeAggBody(EncodeAggBody(agg))
	if err != nil || gotAgg != agg {
		t.Fatalf("agg: %v err=%v", gotAgg, err)
	}
	aggs := []ccam.RouteAggregate{agg, {Nodes: 1, TotalCost: math.Inf(1)}}
	gotAggs, err := DecodeAggsBody(EncodeAggsBody(aggs))
	if err != nil || !reflect.DeepEqual(gotAggs, aggs) {
		t.Fatalf("aggs: %v err=%v", gotAggs, err)
	}
	v, err := DecodeBoolBody(EncodeBoolBody(false))
	if err != nil || v {
		t.Fatalf("bool: %v err=%v", v, err)
	}
	n, err := DecodeUint32Body(EncodeUint32Body(12))
	if err != nil || n != 12 {
		t.Fatalf("uint32: %d err=%v", n, err)
	}
}

func TestApplyBodyRoundTrip(t *testing.T) {
	rj := RecordToJSON(testRecord())
	ops := []ApplyOp{
		{Kind: OpInsertNode, Policy: "second-order", Node: &rj, PredCosts: []float32{2.5}},
		{Kind: OpDeleteNode, Policy: "lazy", ID: 4},
		{Kind: OpInsertEdge, From: 1, To: 2, Cost: 9.5, Policy: "higher-order"},
		{Kind: OpDeleteEdge, From: 2, To: 1, Policy: "first-order"},
		{Kind: OpSetEdgeCost, From: 1, To: 2, Cost: 0.5, Policy: "first-order"},
	}
	body, err := EncodeApplyBody(ops)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeApplyBody(body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ops) {
		t.Fatalf("apply round trip:\n got %+v\nwant %+v", got, ops)
	}
	// The decoded ops build a batch with every op intact.
	b, err := (&ApplyRequest{Ops: got}).Batch()
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != len(ops) {
		t.Fatalf("batch len %d, want %d", b.Len(), len(ops))
	}
	if _, err := EncodeApplyBody([]ApplyOp{{Kind: "explode"}}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown kind: %v", err)
	}
}

func TestApplyRequestBatchErrors(t *testing.T) {
	cases := []ApplyOp{
		{Kind: OpInsertNode}, // nil node
		{Kind: "mystery"},
		{Kind: OpDeleteNode, Policy: "third-order"},
	}
	for _, op := range cases {
		if _, err := (&ApplyRequest{Ops: []ApplyOp{op}}).Batch(); !errors.Is(err, ErrBadRequest) {
			t.Errorf("op %+v: err = %v, want bad request", op, err)
		}
	}
}

func TestRecordJSONRoundTrip(t *testing.T) {
	rec := testRecord()
	raw, err := json.Marshal(RecordToJSON(rec))
	if err != nil {
		t.Fatal(err)
	}
	var rj RecordJSON
	if err := json.Unmarshal(raw, &rj); err != nil {
		t.Fatal(err)
	}
	if got := rj.Record(); !reflect.DeepEqual(got, rec) {
		t.Fatalf("json record round trip: got %+v want %+v", got, rec)
	}
}

func TestQueryBodyRoundTrip(t *testing.T) {
	for _, explain := range []bool{false, true} {
		body := EncodeQueryBody("FIND 7", explain)
		src, exp, err := DecodeQueryBody(body)
		if err != nil || src != "FIND 7" || exp != explain {
			t.Fatalf("query body (explain=%v): %q %v %v", explain, src, exp, err)
		}
	}
	if _, _, err := DecodeQueryBody(nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("empty query body: %v", err)
	}
}

func TestResultBodyRoundTrip(t *testing.T) {
	res := &ccam.Result{
		Stmt:  "FIND 7",
		Kind:  "find",
		Count: 1,
		Nodes: []ccam.NodeResult{{ID: 7, X: 1.5, Y: -2.25}},
	}
	body, err := EncodeResultBody(res)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResultBody(body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("result round trip:\n got %+v\nwant %+v", got, res)
	}
	if _, err := DecodeResultBody([]byte("{")); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("malformed result body: %v", err)
	}
}

// The window type is shared: a RangeRequest's rect travels in the same
// {"min_x":...} shape the CCAM-QL layer and geom package use.
func TestRangeRequestRectJSON(t *testing.T) {
	req := RangeRequest{Rect: ccam.NewRect(ccam.Point{X: 1, Y: 2}, ccam.Point{X: 3, Y: 4})}
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"rect":{"min_x":1,"min_y":2,"max_x":3,"max_y":4}}`
	if string(raw) != want {
		t.Fatalf("RangeRequest JSON = %s, want %s", raw, want)
	}
	var back RangeRequest
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Rect != req.Rect {
		t.Fatalf("rect round trip = %+v, want %+v", back.Rect, req.Rect)
	}
}
