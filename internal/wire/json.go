package wire

import (
	"encoding/json"
	"fmt"

	"ccam"
)

// The JSON protocol. One endpoint per query/mutation, all POST with a
// JSON body (GET /v1/info is the read-only exception):
//
//	POST /v1/find        FindRequest        -> FindResponse
//	POST /v1/has         HasRequest         -> HasResponse
//	POST /v1/successors  SuccessorsRequest  -> RecordsResponse
//	POST /v1/route       RouteRequest       -> RouteResponse
//	POST /v1/range       RangeRequest       -> RecordsResponse
//	POST /v1/find-batch  FindBatchRequest   -> RecordsResponse
//	POST /v1/routes      RoutesRequest      -> RoutesResponse
//	POST /v1/apply       ApplyRequest       -> ApplyResponse
//	POST /v1/query       QueryRequest       -> QueryResponse
//	GET  /v1/info                           -> InfoResponse
//
// A non-2xx response carries ErrorResponse; its "code" field is the
// stable Code name and is the only part clients should branch on.

// RecordJSON is the JSON form of a stored node record.
type RecordJSON struct {
	ID ccam.NodeID `json:"id"`
	X  float64     `json:"x"`
	Y  float64     `json:"y"`
	// Attrs is the opaque attribute payload (base64 via encoding/json's
	// []byte convention); omitted when empty.
	Attrs []byte        `json:"attrs,omitempty"`
	Succs []SuccJSON    `json:"succs,omitempty"`
	Preds []ccam.NodeID `json:"preds,omitempty"`
}

// SuccJSON is one successor-list element.
type SuccJSON struct {
	To   ccam.NodeID `json:"to"`
	Cost float32     `json:"cost"`
}

// RecordToJSON converts a stored record to its wire form.
func RecordToJSON(r *ccam.Record) RecordJSON {
	out := RecordJSON{ID: r.ID, X: r.Pos.X, Y: r.Pos.Y, Attrs: r.Attrs, Preds: r.Preds}
	if len(r.Succs) > 0 {
		out.Succs = make([]SuccJSON, len(r.Succs))
		for i, s := range r.Succs {
			out.Succs[i] = SuccJSON{To: s.To, Cost: s.Cost}
		}
	}
	return out
}

// Record converts the wire form back to a record.
func (r RecordJSON) Record() *ccam.Record {
	rec := &ccam.Record{
		ID:    r.ID,
		Pos:   ccam.Point{X: r.X, Y: r.Y},
		Attrs: r.Attrs,
		Preds: r.Preds,
	}
	if len(r.Succs) > 0 {
		rec.Succs = make([]ccam.SuccEntry, len(r.Succs))
		for i, s := range r.Succs {
			rec.Succs[i] = ccam.SuccEntry{To: s.To, Cost: s.Cost}
		}
	}
	return rec
}

// RecordsToJSON converts a record slice.
func RecordsToJSON(recs []*ccam.Record) []RecordJSON {
	out := make([]RecordJSON, len(recs))
	for i, r := range recs {
		out[i] = RecordToJSON(r)
	}
	return out
}

// AggregateJSON is the JSON form of a route aggregate.
type AggregateJSON struct {
	Nodes     int     `json:"nodes"`
	TotalCost float64 `json:"total_cost"`
	MinCost   float64 `json:"min_cost"`
	MaxCost   float64 `json:"max_cost"`
}

// AggregateToJSON converts a route aggregate to its wire form.
func AggregateToJSON(a ccam.RouteAggregate) AggregateJSON {
	return AggregateJSON{Nodes: a.Nodes, TotalCost: a.TotalCost, MinCost: a.MinCost, MaxCost: a.MaxCost}
}

// Aggregate converts the wire form back.
func (a AggregateJSON) Aggregate() ccam.RouteAggregate {
	return ccam.RouteAggregate{Nodes: a.Nodes, TotalCost: a.TotalCost, MinCost: a.MinCost, MaxCost: a.MaxCost}
}

// Request bodies. Query windows travel as ccam.Rect directly — the
// type marshals itself as {"min_x":…,"min_y":…,"max_x":…,"max_y":…}
// and normalizes corner order on decode, so the wire, the CCAM-QL
// WINDOW clause and RangeQuery all share one window encoding.
type (
	// FindRequest asks for one node's record.
	FindRequest struct {
		ID ccam.NodeID `json:"id"`
	}
	// HasRequest asks whether a node is stored.
	HasRequest struct {
		ID ccam.NodeID `json:"id"`
	}
	// SuccessorsRequest asks for all successor records of a node.
	SuccessorsRequest struct {
		ID ccam.NodeID `json:"id"`
	}
	// RouteRequest asks for the aggregate of one route.
	RouteRequest struct {
		Route []ccam.NodeID `json:"route"`
	}
	// RangeRequest asks for all records inside a window.
	RangeRequest struct {
		Rect ccam.Rect `json:"rect"`
	}
	// FindBatchRequest asks for many records (positional results).
	FindBatchRequest struct {
		IDs []ccam.NodeID `json:"ids"`
	}
	// RoutesRequest asks for many route aggregates (positional).
	RoutesRequest struct {
		Routes [][]ccam.NodeID `json:"routes"`
	}
	// ApplyRequest carries one transactional batch; all ops commit or
	// none do.
	ApplyRequest struct {
		Ops []ApplyOp `json:"ops"`
	}
	// QueryRequest carries one CCAM-QL statement. Explain asks for the
	// plan without executing, equivalent to an EXPLAIN prefix in the
	// statement itself.
	QueryRequest struct {
		Query   string `json:"query"`
		Explain bool   `json:"explain,omitempty"`
	}
)

// ApplyOp kind names (the ApplyOp.Kind field).
const (
	OpInsertNode  = "insert-node"
	OpDeleteNode  = "delete-node"
	OpInsertEdge  = "insert-edge"
	OpDeleteEdge  = "delete-edge"
	OpSetEdgeCost = "set-edge-cost"
)

// ApplyOp is one mutation of a transactional batch. Kind selects which
// fields matter:
//
//	insert-node:   Node (its Succs carry the out-edge costs), PredCosts
//	               (positional costs of Node.Preds), Policy
//	delete-node:   ID, Policy
//	insert-edge:   From, To, Cost, Policy
//	delete-edge:   From, To, Policy
//	set-edge-cost: From, To, Cost
type ApplyOp struct {
	Kind      string      `json:"kind"`
	Policy    string      `json:"policy,omitempty"`
	Node      *RecordJSON `json:"node,omitempty"`
	PredCosts []float32   `json:"pred_costs,omitempty"`
	ID        ccam.NodeID `json:"id,omitempty"`
	From      ccam.NodeID `json:"from,omitempty"`
	To        ccam.NodeID `json:"to,omitempty"`
	Cost      float32     `json:"cost,omitempty"`
}

// ParsePolicy resolves a reorganization policy name. The empty string
// is FirstOrder (the cheapest policy is the default).
func ParsePolicy(name string) (ccam.Policy, error) {
	switch name {
	case "", "first-order":
		return ccam.FirstOrder, nil
	case "second-order":
		return ccam.SecondOrder, nil
	case "higher-order":
		return ccam.HigherOrder, nil
	case "lazy":
		return ccam.Lazy, nil
	}
	return 0, fmt.Errorf("%w: unknown policy %q", ErrBadRequest, name)
}

// Batch converts the request into the store's batch form.
func (r *ApplyRequest) Batch() (*ccam.Batch, error) {
	b := new(ccam.Batch)
	for i, op := range r.Ops {
		pol, err := ParsePolicy(op.Policy)
		if err != nil {
			return nil, fmt.Errorf("op %d: %w", i, err)
		}
		switch op.Kind {
		case OpInsertNode:
			if op.Node == nil {
				return nil, fmt.Errorf("%w: op %d: insert-node without node", ErrBadRequest, i)
			}
			b.Insert(&ccam.InsertOp{Rec: op.Node.Record(), PredCosts: op.PredCosts}, pol)
		case OpDeleteNode:
			b.Delete(op.ID, pol)
		case OpInsertEdge:
			b.InsertEdge(op.From, op.To, op.Cost, pol)
		case OpDeleteEdge:
			b.DeleteEdge(op.From, op.To, pol)
		case OpSetEdgeCost:
			b.SetEdgeCost(op.From, op.To, op.Cost)
		default:
			return nil, fmt.Errorf("%w: op %d: unknown kind %q", ErrBadRequest, i, op.Kind)
		}
	}
	return b, nil
}

// TraceHeader is the HTTP request header carrying a 16-hex-digit
// trace id, the JSON protocol's form of the binary extended header:
// its presence marks the request sampled (store-side traces are
// tagged with the id) and asks for the per-request stats field in the
// response. The server echoes it on the response.
const TraceHeader = "X-Ccam-Trace"

// StatsField is embedded by the JSON response bodies to carry the
// optional per-request resource account (the JSON protocol's form of
// the binary stats extension block). It is populated only when the
// request carried TraceHeader.
type StatsField struct {
	Stats *ccam.ReqStats `json:"stats,omitempty"`
}

// AttachStats sets the account echoed to the client.
func (s *StatsField) AttachStats(rs *ccam.ReqStats) { s.Stats = rs }

// WireStats returns the attached account (nil when absent).
func (s *StatsField) WireStats() *ccam.ReqStats { return s.Stats }

// Response bodies.
type (
	// FindResponse carries one record.
	FindResponse struct {
		Record RecordJSON `json:"record"`
		StatsField
	}
	// HasResponse carries a stored/absent verdict.
	HasResponse struct {
		Has bool `json:"has"`
		StatsField
	}
	// RecordsResponse carries a record list (successors, range and
	// batch results).
	RecordsResponse struct {
		Records []RecordJSON `json:"records"`
		StatsField
	}
	// RouteResponse carries one aggregate.
	RouteResponse struct {
		Aggregate AggregateJSON `json:"aggregate"`
		StatsField
	}
	// RoutesResponse carries positional aggregates.
	RoutesResponse struct {
		Aggregates []AggregateJSON `json:"aggregates"`
		StatsField
	}
	// ApplyResponse acknowledges a committed batch.
	ApplyResponse struct {
		Applied int `json:"applied"`
		StatsField
	}
	// QueryResponse carries a CCAM-QL result: the chosen plan, the
	// rows/aggregate, and (for executed statements) the measured I/O.
	QueryResponse struct {
		Result *ccam.Result `json:"result"`
		StatsField
	}
	// InfoResponse describes the served store.
	InfoResponse struct {
		Name        string `json:"name"`
		Nodes       int    `json:"nodes"`
		Pages       int    `json:"pages"`
		MaxInFlight int    `json:"max_in_flight"`
	}
	// ErrorResponse is the body of every non-2xx JSON response.
	ErrorResponse struct {
		Error ErrorJSON `json:"error"`
	}
	// ErrorJSON is the error payload: the stable code name plus a
	// human-readable message.
	ErrorJSON struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	}
)

// DecodeErrorResponse turns an ErrorResponse body into the client-side
// error (wrapping the code's sentinel).
func DecodeErrorResponse(body []byte, httpStatus int) error {
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error.Code == "" {
		return RemoteError(CodeInternal, fmt.Sprintf("http %d: %s", httpStatus, body))
	}
	return RemoteError(CodeFromName(er.Error.Code), er.Error.Message)
}

// Routes converts a JSON route list to ccam routes.
func Routes(rr [][]ccam.NodeID) []ccam.Route {
	routes := make([]ccam.Route, len(rr))
	for i, r := range rr {
		routes[i] = ccam.Route(r)
	}
	return routes
}
