package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"ccam"
	"ccam/internal/netfile"
)

// The binary protocol. Both directions carry length-prefixed frames:
//
//	[0:4)  payload length n (uint32 LE, excluding the prefix itself)
//	[4:4+n) payload
//
// A request payload is
//
//	[0:4)  request id (echoed verbatim in the response, so a
//	       connection may pipeline requests and match replies
//	       out of order)
//	[4]    op code; the high bit (0x80) marks an extended header
//	[5:9)  deadline in milliseconds (uint32 LE; 0 = none) — the server
//	       bounds the query's context by it
//	[9:)   op-specific body
//
// When the op byte's high bit is set the header continues past the
// deadline (op codes never use the high bit, so a v6 peer's frames
// are decoded unchanged):
//
//	[9]     request flags (bit 0: sampled — trace the request
//	        server-side; bit 1: want-stats — return a stats block)
//	[10:18) trace id (uint64 LE; 0 = untraced)
//	[18:)   op-specific body
//
// A response payload is
//
//	[0:4)  request id
//	[4]    status code (Code); the high bit (0x80) marks a stats
//	       extension block inserted before the normal remainder
//	[5:)   op-specific body when the code is CodeOK, otherwise
//	       uint16 LE message length + message bytes
//
// The stats extension block (sent only when the request asked for it)
// is uint16 LE length + that many bytes of packed ReqStats; decoders
// must skip unknown trailing bytes inside the block, so fields can be
// appended without a version bump. It precedes the normal body or
// error message, and travels on error responses too (a shed request
// reports its Shed flag this way).
//
// All integers are little endian, matching the store's record format
// (records travel as their stored netfile image, no re-encoding).

// Op identifies a binary-protocol operation.
type Op uint8

// Binary protocol op codes. Like error codes these are stable:
// existing values never change meaning, new ops are only appended.
const (
	// OpPing is a no-op round trip (empty body both ways).
	OpPing Op = 0
	// OpFind looks up one record: body id -> record image.
	OpFind Op = 1
	// OpGetSuccessors fetches all successor records: id -> record list.
	OpGetSuccessors Op = 2
	// OpEvaluateRoute aggregates one route: id list -> aggregate.
	OpEvaluateRoute Op = 3
	// OpRangeQuery fetches records in a window: rect -> record list.
	OpRangeQuery Op = 4
	// OpHas tests presence: id -> bool byte.
	OpHas Op = 5
	// OpFindBatch looks up many records: id list -> record list.
	OpFindBatch Op = 6
	// OpEvaluateRoutes aggregates many routes: route list -> aggregates.
	OpEvaluateRoutes Op = 7
	// OpApply commits one transactional batch: op list -> applied count.
	OpApply Op = 8
	// OpQuery runs one CCAM-QL statement: flags byte + statement ->
	// JSON-encoded result.
	OpQuery Op = 9
)

// String names the op for errors and traces.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpFind:
		return "find"
	case OpGetSuccessors:
		return "get-successors"
	case OpEvaluateRoute:
		return "evaluate-route"
	case OpRangeQuery:
		return "range-query"
	case OpHas:
		return "has"
	case OpFindBatch:
		return "find-batch"
	case OpEvaluateRoutes:
		return "evaluate-routes"
	case OpApply:
		return "apply"
	case OpQuery:
		return "query"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// MaxFrame bounds a frame payload; a peer announcing more is treated
// as corrupt and the connection is dropped.
const MaxFrame = 16 << 20

// reqHeaderSize is the fixed request-payload prefix: id + op + deadline.
const reqHeaderSize = 9

// opExtFlag on the op byte marks an extended (v7) request header. Op
// codes are small (0–9 today, appended slowly), so the high bit is
// free to carry framing.
const opExtFlag = 0x80

// extReqHeaderSize is the extended prefix: the v6 prefix plus a flags
// byte and a trace id.
const extReqHeaderSize = reqHeaderSize + 1 + 8

// Request flag bits (extended header byte 9).
const (
	// reqFlagSampled asks the server to trace the request: store
	// operations it runs are tagged with the trace id in the tracer
	// ring, retrievable via /traces?trace=<id>.
	reqFlagSampled = 1 << 0
	// reqFlagWantStats asks the server to return the request's
	// ReqStats in a response stats block.
	reqFlagWantStats = 1 << 1
)

// respStatsFlag on the status byte marks a stats extension block
// before the normal response remainder.
const respStatsFlag = 0x80

// ReqHeader is the decoded request prefix, v6 and v7 alike. A v6
// frame decodes with TraceID 0 and both flags false.
type ReqHeader struct {
	ID         uint32
	Op         Op
	DeadlineMS uint32
	// TraceID identifies the request across client, server and the
	// store's tracer ring (0 = untraced).
	TraceID uint64
	// Sampled asks the server to tag store-side traces with TraceID.
	Sampled bool
	// WantStats asks the server to echo the request's ReqStats.
	WantStats bool
}

// extended reports whether the header needs the v7 encoding.
func (h ReqHeader) extended() bool {
	return h.TraceID != 0 || h.Sampled || h.WantStats
}

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: frame of %d bytes exceeds %d", ErrBadRequest, len(payload), MaxFrame)
	}
	var pfx [4]byte
	binary.LittleEndian.PutUint32(pfx[:], uint32(len(payload)))
	if _, err := w.Write(pfx[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame. io.EOF before the first
// prefix byte means a clean close; a short payload is
// io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) ([]byte, error) {
	var pfx [4]byte
	if _, err := io.ReadFull(r, pfx[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(pfx[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: frame of %d bytes exceeds %d", ErrBadRequest, n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}

// EncodeRequest builds a v6 request payload (no trace context). Peers
// that never sample stay on the short header.
func EncodeRequest(id uint32, op Op, deadlineMS uint32, body []byte) []byte {
	buf := make([]byte, reqHeaderSize+len(body))
	binary.LittleEndian.PutUint32(buf[0:4], id)
	buf[4] = byte(op)
	binary.LittleEndian.PutUint32(buf[5:9], deadlineMS)
	copy(buf[reqHeaderSize:], body)
	return buf
}

// EncodeRequestHeader builds a request payload, choosing the v6 or
// extended encoding by whether the header carries trace context.
func EncodeRequestHeader(h ReqHeader, body []byte) []byte {
	if !h.extended() {
		return EncodeRequest(h.ID, h.Op, h.DeadlineMS, body)
	}
	buf := make([]byte, extReqHeaderSize+len(body))
	binary.LittleEndian.PutUint32(buf[0:4], h.ID)
	buf[4] = byte(h.Op) | opExtFlag
	binary.LittleEndian.PutUint32(buf[5:9], h.DeadlineMS)
	var fl byte
	if h.Sampled {
		fl |= reqFlagSampled
	}
	if h.WantStats {
		fl |= reqFlagWantStats
	}
	buf[9] = fl
	binary.LittleEndian.PutUint64(buf[10:18], h.TraceID)
	copy(buf[extReqHeaderSize:], body)
	return buf
}

// DecodeRequestHeader splits a request payload into its header and
// body, accepting both the v6 and the extended prefix.
func DecodeRequestHeader(payload []byte) (ReqHeader, []byte, error) {
	if len(payload) < reqHeaderSize {
		return ReqHeader{}, nil, fmt.Errorf("%w: request payload of %d bytes", ErrBadRequest, len(payload))
	}
	h := ReqHeader{
		ID:         binary.LittleEndian.Uint32(payload[0:4]),
		Op:         Op(payload[4] &^ opExtFlag),
		DeadlineMS: binary.LittleEndian.Uint32(payload[5:9]),
	}
	if payload[4]&opExtFlag == 0 {
		return h, payload[reqHeaderSize:], nil
	}
	if len(payload) < extReqHeaderSize {
		return ReqHeader{}, nil, fmt.Errorf("%w: extended request payload of %d bytes", ErrBadRequest, len(payload))
	}
	fl := payload[9]
	h.Sampled = fl&reqFlagSampled != 0
	h.WantStats = fl&reqFlagWantStats != 0
	h.TraceID = binary.LittleEndian.Uint64(payload[10:18])
	return h, payload[extReqHeaderSize:], nil
}

// DecodeRequest splits a request payload into its header fields and
// body (the pre-trace-context accessor; extended headers decode too,
// dropping the trace fields).
func DecodeRequest(payload []byte) (id uint32, op Op, deadlineMS uint32, body []byte, err error) {
	h, body, err := DecodeRequestHeader(payload)
	return h.ID, h.Op, h.DeadlineMS, body, err
}

// EncodeOKResponse builds a success response payload.
func EncodeOKResponse(id uint32, body []byte) []byte {
	buf := make([]byte, 5+len(body))
	binary.LittleEndian.PutUint32(buf[0:4], id)
	buf[4] = byte(CodeOK)
	copy(buf[5:], body)
	return buf
}

// EncodeErrResponse builds an error response payload for err (which
// must be non-nil).
func EncodeErrResponse(id uint32, err error) []byte {
	msg := err.Error()
	if len(msg) > math.MaxUint16 {
		msg = msg[:math.MaxUint16]
	}
	buf := make([]byte, 5+2+len(msg))
	binary.LittleEndian.PutUint32(buf[0:4], id)
	buf[4] = byte(CodeOf(err))
	binary.LittleEndian.PutUint16(buf[5:7], uint16(len(msg)))
	copy(buf[7:], msg)
	return buf
}

// statsBlockSize is the packed ReqStats encoding (v1): five uint32
// counters, the WAL wait, an op count and a flags byte. Decoders
// accept longer blocks (unknown trailing fields are skipped), so
// fields can be appended without a version bump.
const statsBlockSize = 5*4 + 8 + 2 + 1

// statsFlagShed marks a request refused by admission control.
const statsFlagShed = 1 << 0

// clamp32 saturates a counter into the wire's uint32 field.
func clamp32(v int64) uint32 {
	if v < 0 {
		return 0
	}
	if v > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(v)
}

// EncodeStatsBlock packs a per-request resource account.
func EncodeStatsBlock(rs *ccam.ReqStats) []byte {
	buf := make([]byte, statsBlockSize)
	binary.LittleEndian.PutUint32(buf[0:4], clamp32(rs.DataReads))
	binary.LittleEndian.PutUint32(buf[4:8], clamp32(rs.DataWrites))
	binary.LittleEndian.PutUint32(buf[8:12], clamp32(rs.IndexPages))
	binary.LittleEndian.PutUint32(buf[12:16], clamp32(rs.BufferHits))
	binary.LittleEndian.PutUint32(buf[16:20], clamp32(rs.BufferMisses))
	binary.LittleEndian.PutUint64(buf[20:28], uint64(max(rs.WALWaitNs, 0)))
	binary.LittleEndian.PutUint16(buf[28:30], uint16(min(max(rs.Ops, 0), math.MaxUint16)))
	if rs.Shed {
		buf[30] |= statsFlagShed
	}
	return buf
}

// DecodeStatsBlock unpacks a stats block; longer (newer) blocks decode
// their known prefix.
func DecodeStatsBlock(b []byte) (*ccam.ReqStats, error) {
	if len(b) < statsBlockSize {
		return nil, fmt.Errorf("%w: stats block of %d bytes", ErrBadRequest, len(b))
	}
	rs := &ccam.ReqStats{
		DataReads:    int64(binary.LittleEndian.Uint32(b[0:4])),
		DataWrites:   int64(binary.LittleEndian.Uint32(b[4:8])),
		IndexPages:   int64(binary.LittleEndian.Uint32(b[8:12])),
		BufferHits:   int64(binary.LittleEndian.Uint32(b[12:16])),
		BufferMisses: int64(binary.LittleEndian.Uint32(b[16:20])),
		WALWaitNs:    int64(binary.LittleEndian.Uint64(b[20:28])),
		Ops:          int64(binary.LittleEndian.Uint16(b[28:30])),
		Shed:         b[30]&statsFlagShed != 0,
	}
	return rs, nil
}

// appendStatsPrefix writes the shared response prefix [id][code] with
// the stats block inserted when rs is non-nil, returning the buffer to
// append the normal remainder to.
func appendStatsPrefix(id uint32, code Code, rs *ccam.ReqStats) []byte {
	cb := byte(code)
	sz := 5
	var block []byte
	if rs != nil {
		block = EncodeStatsBlock(rs)
		cb |= respStatsFlag
		sz += 2 + len(block)
	}
	buf := make([]byte, 5, sz)
	binary.LittleEndian.PutUint32(buf[0:4], id)
	buf[4] = cb
	if rs != nil {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(block)))
		buf = append(buf, block...)
	}
	return buf
}

// EncodeOKResponseStats builds a success response with the request's
// resource account attached (rs nil falls back to the plain form).
func EncodeOKResponseStats(id uint32, body []byte, rs *ccam.ReqStats) []byte {
	if rs == nil {
		return EncodeOKResponse(id, body)
	}
	return append(appendStatsPrefix(id, CodeOK, rs), body...)
}

// EncodeErrResponseStats builds an error response with the request's
// resource account attached — a shed request reports Shed this way.
func EncodeErrResponseStats(id uint32, err error, rs *ccam.ReqStats) []byte {
	if rs == nil {
		return EncodeErrResponse(id, err)
	}
	msg := err.Error()
	if len(msg) > math.MaxUint16 {
		msg = msg[:math.MaxUint16]
	}
	buf := appendStatsPrefix(id, CodeOf(err), rs)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(msg)))
	return append(buf, msg...)
}

// DecodeResponse splits a response payload. For a non-OK code the
// returned error wraps the code's sentinel (errors.Is survives the
// round trip); body is nil then. A stats block, if present, is
// discarded — use DecodeResponseStats to keep it.
func DecodeResponse(payload []byte) (id uint32, body []byte, err error) {
	id, body, _, err = DecodeResponseStats(payload)
	return id, body, err
}

// DecodeResponseStats is DecodeResponse returning the stats extension
// block too (nil when the response carries none). Stats are returned
// alongside the decoded error for non-OK responses.
func DecodeResponseStats(payload []byte) (id uint32, body []byte, stats *ccam.ReqStats, err error) {
	if len(payload) < 5 {
		return 0, nil, nil, fmt.Errorf("%w: response payload of %d bytes", ErrBadRequest, len(payload))
	}
	id = binary.LittleEndian.Uint32(payload[0:4])
	cb := payload[4]
	rest := payload[5:]
	if cb&respStatsFlag != 0 {
		if len(rest) < 2 {
			return id, nil, nil, fmt.Errorf("%w: truncated stats block", ErrBadRequest)
		}
		n := int(binary.LittleEndian.Uint16(rest[0:2]))
		if len(rest) < 2+n {
			return id, nil, nil, fmt.Errorf("%w: truncated stats block", ErrBadRequest)
		}
		if stats, err = DecodeStatsBlock(rest[2 : 2+n]); err != nil {
			return id, nil, nil, err
		}
		rest = rest[2+n:]
	}
	code := Code(cb &^ respStatsFlag)
	if code == CodeOK {
		return id, rest, stats, nil
	}
	if len(rest) < 2 {
		return id, nil, stats, fmt.Errorf("%w: truncated error response", ErrBadRequest)
	}
	n := int(binary.LittleEndian.Uint16(rest[0:2]))
	if len(rest) < 2+n {
		return id, nil, stats, fmt.Errorf("%w: truncated error message", ErrBadRequest)
	}
	return id, nil, stats, RemoteError(code, string(rest[2:2+n]))
}

// --- op bodies -------------------------------------------------------

func appendUint32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendFloat64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func takeUint32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, fmt.Errorf("%w: truncated body", ErrBadRequest)
	}
	return binary.LittleEndian.Uint32(b), b[4:], nil
}

func takeFloat64(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("%w: truncated body", ErrBadRequest)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], nil
}

// EncodeIDBody encodes a single node id (OpFind, OpHas,
// OpGetSuccessors requests).
func EncodeIDBody(id ccam.NodeID) []byte {
	return appendUint32(nil, uint32(id))
}

// DecodeIDBody decodes a single node id.
func DecodeIDBody(b []byte) (ccam.NodeID, error) {
	v, rest, err := takeUint32(b)
	if err != nil || len(rest) != 0 {
		return 0, fmt.Errorf("%w: id body of %d bytes", ErrBadRequest, len(b))
	}
	return ccam.NodeID(v), nil
}

// EncodeIDsBody encodes a node-id list (OpEvaluateRoute, OpFindBatch
// requests).
func EncodeIDsBody(ids []ccam.NodeID) []byte {
	buf := appendUint32(make([]byte, 0, 4+4*len(ids)), uint32(len(ids)))
	for _, id := range ids {
		buf = appendUint32(buf, uint32(id))
	}
	return buf
}

// DecodeIDsBody decodes a node-id list, returning the remainder of the
// buffer (route lists concatenate).
func DecodeIDsBody(b []byte) ([]ccam.NodeID, []byte, error) {
	n, b, err := takeUint32(b)
	if err != nil {
		return nil, nil, err
	}
	if uint64(n)*4 > uint64(len(b)) {
		return nil, nil, fmt.Errorf("%w: id list of %d entries in %d bytes", ErrBadRequest, n, len(b))
	}
	ids := make([]ccam.NodeID, n)
	for i := range ids {
		ids[i] = ccam.NodeID(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return ids, b[4*n:], nil
}

// EncodeRectBody encodes a query window (OpRangeQuery request).
func EncodeRectBody(r ccam.Rect) []byte {
	buf := make([]byte, 0, 32)
	buf = appendFloat64(buf, r.Min.X)
	buf = appendFloat64(buf, r.Min.Y)
	buf = appendFloat64(buf, r.Max.X)
	buf = appendFloat64(buf, r.Max.Y)
	return buf
}

// DecodeRectBody decodes a query window.
func DecodeRectBody(b []byte) (ccam.Rect, error) {
	var vals [4]float64
	var err error
	for i := range vals {
		if vals[i], b, err = takeFloat64(b); err != nil {
			return ccam.Rect{}, err
		}
	}
	if len(b) != 0 {
		return ccam.Rect{}, fmt.Errorf("%w: %d trailing bytes after rect", ErrBadRequest, len(b))
	}
	return ccam.NewRect(ccam.Point{X: vals[0], Y: vals[1]}, ccam.Point{X: vals[2], Y: vals[3]}), nil
}

// EncodeRoutesBody encodes a route list (OpEvaluateRoutes request).
func EncodeRoutesBody(routes []ccam.Route) []byte {
	buf := appendUint32(nil, uint32(len(routes)))
	for _, r := range routes {
		buf = appendUint32(buf, uint32(len(r)))
		for _, id := range r {
			buf = appendUint32(buf, uint32(id))
		}
	}
	return buf
}

// DecodeRoutesBody decodes a route list.
func DecodeRoutesBody(b []byte) ([]ccam.Route, error) {
	n, b, err := takeUint32(b)
	if err != nil {
		return nil, err
	}
	routes := make([]ccam.Route, 0, min(int(n), 1<<16))
	for i := uint32(0); i < n; i++ {
		var ids []ccam.NodeID
		if ids, b, err = DecodeIDsBody(b); err != nil {
			return nil, err
		}
		routes = append(routes, ccam.Route(ids))
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after routes", ErrBadRequest, len(b))
	}
	return routes, nil
}

// EncodeRecordBody encodes one record (OpFind response) as its stored
// netfile image.
func EncodeRecordBody(rec *ccam.Record) []byte {
	return netfile.EncodeRecord(rec)
}

// DecodeRecordBody decodes one record.
func DecodeRecordBody(b []byte) (*ccam.Record, error) {
	rec, err := netfile.DecodeRecord(b)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return rec, nil
}

// EncodeRecordsBody encodes a record list (OpGetSuccessors,
// OpRangeQuery, OpFindBatch responses): count, then per record a
// uint32 length + stored image.
func EncodeRecordsBody(recs []*ccam.Record) []byte {
	sz := 4
	for _, r := range recs {
		sz += 4 + r.EncodedSize()
	}
	buf := appendUint32(make([]byte, 0, sz), uint32(len(recs)))
	for _, r := range recs {
		img := netfile.EncodeRecord(r)
		buf = appendUint32(buf, uint32(len(img)))
		buf = append(buf, img...)
	}
	return buf
}

// DecodeRecordsBody decodes a record list.
func DecodeRecordsBody(b []byte) ([]*ccam.Record, error) {
	n, b, err := takeUint32(b)
	if err != nil {
		return nil, err
	}
	recs := make([]*ccam.Record, 0, min(int(n), 1<<16))
	for i := uint32(0); i < n; i++ {
		var sz uint32
		if sz, b, err = takeUint32(b); err != nil {
			return nil, err
		}
		if uint64(sz) > uint64(len(b)) {
			return nil, fmt.Errorf("%w: record of %d bytes in %d-byte body", ErrBadRequest, sz, len(b))
		}
		rec, err := DecodeRecordBody(b[:sz])
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
		b = b[sz:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after records", ErrBadRequest, len(b))
	}
	return recs, nil
}

// EncodeBoolBody encodes a verdict byte (OpHas response).
func EncodeBoolBody(v bool) []byte {
	if v {
		return []byte{1}
	}
	return []byte{0}
}

// DecodeBoolBody decodes a verdict byte.
func DecodeBoolBody(b []byte) (bool, error) {
	if len(b) != 1 || b[0] > 1 {
		return false, fmt.Errorf("%w: bool body of %d bytes", ErrBadRequest, len(b))
	}
	return b[0] == 1, nil
}

// aggSize is the encoded size of one route aggregate.
const aggSize = 4 + 3*8

func appendAgg(buf []byte, a ccam.RouteAggregate) []byte {
	buf = appendUint32(buf, uint32(a.Nodes))
	buf = appendFloat64(buf, a.TotalCost)
	buf = appendFloat64(buf, a.MinCost)
	buf = appendFloat64(buf, a.MaxCost)
	return buf
}

func takeAgg(b []byte) (ccam.RouteAggregate, []byte, error) {
	if len(b) < aggSize {
		return ccam.RouteAggregate{}, nil, fmt.Errorf("%w: truncated aggregate", ErrBadRequest)
	}
	var a ccam.RouteAggregate
	a.Nodes = int(binary.LittleEndian.Uint32(b))
	a.TotalCost = math.Float64frombits(binary.LittleEndian.Uint64(b[4:]))
	a.MinCost = math.Float64frombits(binary.LittleEndian.Uint64(b[12:]))
	a.MaxCost = math.Float64frombits(binary.LittleEndian.Uint64(b[20:]))
	return a, b[aggSize:], nil
}

// EncodeAggBody encodes one route aggregate (OpEvaluateRoute response).
func EncodeAggBody(a ccam.RouteAggregate) []byte {
	return appendAgg(make([]byte, 0, aggSize), a)
}

// DecodeAggBody decodes one route aggregate.
func DecodeAggBody(b []byte) (ccam.RouteAggregate, error) {
	a, rest, err := takeAgg(b)
	if err != nil {
		return a, err
	}
	if len(rest) != 0 {
		return a, fmt.Errorf("%w: %d trailing bytes after aggregate", ErrBadRequest, len(rest))
	}
	return a, nil
}

// EncodeAggsBody encodes positional aggregates (OpEvaluateRoutes
// response).
func EncodeAggsBody(aggs []ccam.RouteAggregate) []byte {
	buf := appendUint32(make([]byte, 0, 4+aggSize*len(aggs)), uint32(len(aggs)))
	for _, a := range aggs {
		buf = appendAgg(buf, a)
	}
	return buf
}

// DecodeAggsBody decodes positional aggregates.
func DecodeAggsBody(b []byte) ([]ccam.RouteAggregate, error) {
	n, b, err := takeUint32(b)
	if err != nil {
		return nil, err
	}
	aggs := make([]ccam.RouteAggregate, 0, min(int(n), 1<<16))
	for i := uint32(0); i < n; i++ {
		var a ccam.RouteAggregate
		if a, b, err = takeAgg(b); err != nil {
			return nil, err
		}
		aggs = append(aggs, a)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after aggregates", ErrBadRequest, len(b))
	}
	return aggs, nil
}

// queryFlagExplain in the query body's flags byte asks for the plan
// without executing, equivalent to an EXPLAIN prefix in the statement.
const queryFlagExplain = 1 << 0

// EncodeQueryBody encodes a CCAM-QL statement (OpQuery request): one
// flags byte, then the statement's UTF-8 bytes.
func EncodeQueryBody(src string, explain bool) []byte {
	buf := make([]byte, 1, 1+len(src))
	if explain {
		buf[0] |= queryFlagExplain
	}
	return append(buf, src...)
}

// DecodeQueryBody decodes a CCAM-QL statement.
func DecodeQueryBody(b []byte) (src string, explain bool, err error) {
	if len(b) < 1 {
		return "", false, fmt.Errorf("%w: empty query body", ErrBadRequest)
	}
	return string(b[1:]), b[0]&queryFlagExplain != 0, nil
}

// EncodeResultBody encodes a query result (OpQuery response). Unlike
// the fixed-layout bodies above the result is an evolving composite
// (plan, rows, aggregate, actuals), so it travels as its JSON
// encoding inside the binary frame.
func EncodeResultBody(res *ccam.Result) ([]byte, error) {
	return json.Marshal(res)
}

// DecodeResultBody decodes a query result.
func DecodeResultBody(b []byte) (*ccam.Result, error) {
	res := new(ccam.Result)
	if err := json.Unmarshal(b, res); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return res, nil
}

// EncodeUint32Body encodes a counter (OpApply response: ops applied).
func EncodeUint32Body(v uint32) []byte {
	return appendUint32(nil, v)
}

// DecodeUint32Body decodes a counter.
func DecodeUint32Body(b []byte) (uint32, error) {
	v, rest, err := takeUint32(b)
	if err != nil || len(rest) != 0 {
		return 0, fmt.Errorf("%w: counter body of %d bytes", ErrBadRequest, len(b))
	}
	return v, nil
}

// Binary apply-op kind bytes (the ApplyOp.Kind names, one byte each).
const (
	binOpInsertNode  = 1
	binOpDeleteNode  = 2
	binOpInsertEdge  = 3
	binOpDeleteEdge  = 4
	binOpSetEdgeCost = 5
)

func kindByte(kind string) (byte, error) {
	switch kind {
	case OpInsertNode:
		return binOpInsertNode, nil
	case OpDeleteNode:
		return binOpDeleteNode, nil
	case OpInsertEdge:
		return binOpInsertEdge, nil
	case OpDeleteEdge:
		return binOpDeleteEdge, nil
	case OpSetEdgeCost:
		return binOpSetEdgeCost, nil
	}
	return 0, fmt.Errorf("%w: unknown apply kind %q", ErrBadRequest, kind)
}

func kindName(b byte) (string, error) {
	switch b {
	case binOpInsertNode:
		return OpInsertNode, nil
	case binOpDeleteNode:
		return OpDeleteNode, nil
	case binOpInsertEdge:
		return OpInsertEdge, nil
	case binOpDeleteEdge:
		return OpDeleteEdge, nil
	case binOpSetEdgeCost:
		return OpSetEdgeCost, nil
	}
	return "", fmt.Errorf("%w: unknown apply kind byte %d", ErrBadRequest, b)
}

func policyByte(name string) (byte, error) {
	p, err := ParsePolicy(name)
	return byte(p), err
}

// policyName inverts policyByte; the byte is the netfile.Policy value.
func policyName(b byte) (string, error) {
	if b > byte(ccam.Lazy) {
		return "", fmt.Errorf("%w: unknown policy byte %d", ErrBadRequest, b)
	}
	return ccam.Policy(b).String(), nil
}

// EncodeApplyBody encodes a transactional batch (OpApply request):
// count, then per op a kind byte, policy byte and kind-specific
// fields; insert-node carries a length-prefixed record image plus its
// positional predecessor costs.
func EncodeApplyBody(ops []ApplyOp) ([]byte, error) {
	buf := appendUint32(nil, uint32(len(ops)))
	for i, op := range ops {
		kb, err := kindByte(op.Kind)
		if err != nil {
			return nil, fmt.Errorf("op %d: %w", i, err)
		}
		pb, err := policyByte(op.Policy)
		if err != nil {
			return nil, fmt.Errorf("op %d: %w", i, err)
		}
		buf = append(buf, kb, pb)
		switch kb {
		case binOpInsertNode:
			if op.Node == nil {
				return nil, fmt.Errorf("%w: op %d: insert-node without node", ErrBadRequest, i)
			}
			img := netfile.EncodeRecord(op.Node.Record())
			buf = appendUint32(buf, uint32(len(img)))
			buf = append(buf, img...)
			buf = appendUint32(buf, uint32(len(op.PredCosts)))
			for _, c := range op.PredCosts {
				buf = appendUint32(buf, math.Float32bits(c))
			}
		case binOpDeleteNode:
			buf = appendUint32(buf, uint32(op.ID))
		case binOpInsertEdge, binOpSetEdgeCost:
			buf = appendUint32(buf, uint32(op.From))
			buf = appendUint32(buf, uint32(op.To))
			buf = appendUint32(buf, math.Float32bits(op.Cost))
		case binOpDeleteEdge:
			buf = appendUint32(buf, uint32(op.From))
			buf = appendUint32(buf, uint32(op.To))
		}
	}
	return buf, nil
}

// DecodeApplyBody decodes a transactional batch.
func DecodeApplyBody(b []byte) ([]ApplyOp, error) {
	n, b, err := takeUint32(b)
	if err != nil {
		return nil, err
	}
	ops := make([]ApplyOp, 0, min(int(n), 1<<16))
	for i := uint32(0); i < n; i++ {
		if len(b) < 2 {
			return nil, fmt.Errorf("%w: truncated apply op", ErrBadRequest)
		}
		kb, pb := b[0], b[1]
		b = b[2:]
		var op ApplyOp
		if op.Kind, err = kindName(kb); err != nil {
			return nil, err
		}
		if op.Policy, err = policyName(pb); err != nil {
			return nil, err
		}
		switch kb {
		case binOpInsertNode:
			var sz uint32
			if sz, b, err = takeUint32(b); err != nil {
				return nil, err
			}
			if uint64(sz) > uint64(len(b)) {
				return nil, fmt.Errorf("%w: record of %d bytes in %d-byte body", ErrBadRequest, sz, len(b))
			}
			rec, err := DecodeRecordBody(b[:sz])
			if err != nil {
				return nil, err
			}
			b = b[sz:]
			rj := RecordToJSON(rec)
			op.Node = &rj
			var nc uint32
			if nc, b, err = takeUint32(b); err != nil {
				return nil, err
			}
			if uint64(nc)*4 > uint64(len(b)) {
				return nil, fmt.Errorf("%w: %d pred costs in %d bytes", ErrBadRequest, nc, len(b))
			}
			op.PredCosts = make([]float32, nc)
			for j := range op.PredCosts {
				op.PredCosts[j] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*j:]))
			}
			b = b[4*nc:]
		case binOpDeleteNode:
			var v uint32
			if v, b, err = takeUint32(b); err != nil {
				return nil, err
			}
			op.ID = ccam.NodeID(v)
		case binOpInsertEdge, binOpSetEdgeCost, binOpDeleteEdge:
			var from, to uint32
			if from, b, err = takeUint32(b); err != nil {
				return nil, err
			}
			if to, b, err = takeUint32(b); err != nil {
				return nil, err
			}
			op.From, op.To = ccam.NodeID(from), ccam.NodeID(to)
			if kb != binOpDeleteEdge {
				var c uint32
				if c, b, err = takeUint32(b); err != nil {
					return nil, err
				}
				op.Cost = math.Float32frombits(c)
			}
		}
		ops = append(ops, op)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after apply ops", ErrBadRequest, len(b))
	}
	return ops, nil
}
