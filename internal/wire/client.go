package wire

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ccam"
)

// Client is a binary-protocol connection. It issues one request at a
// time (calls serialize on an internal mutex); open several clients
// for concurrency — connections are cheap on the server side.
//
// Context handling: a context deadline travels in the request header
// so the server bounds the query itself. If the context is canceled
// while a reply is pending the connection is closed (the server sees
// the disconnect and cancels the running query) and the client is no
// longer usable.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	nextID uint32
	closed atomic.Bool
}

// Dial connects a binary-protocol client to addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// DialContext is Dial bounded by ctx.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 16<<10),
		bw:   bufio.NewWriterSize(conn, 16<<10),
	}
}

// Close closes the underlying connection. It is safe to call with a
// request in flight: the exchange unblocks with an error (net.Conn is
// concurrency-safe, so Close takes no client lock).
func (c *Client) Close() error {
	c.closed.Store(true)
	return c.conn.Close()
}

// deadlineMS converts a context deadline to the header's millisecond
// budget (0 = none). A deadline in the past becomes the minimum 1ms so
// the server still sees an expired budget rather than none.
func deadlineMS(ctx context.Context) uint32 {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(dl).Milliseconds()
	if ms < 1 {
		return 1
	}
	if ms > 1<<31 {
		return 1 << 31
	}
	return uint32(ms)
}

// call performs one request/response exchange. Trace context rides
// the request: a ctx trace id (ccam.WithTraceID) marks the request
// sampled, and a ctx ReqStats sink (ccam.WithReqStats) asks the
// server for the request's resource account, decoded into the sink on
// return — on errors too, so a shed request still reports Shed.
func (c *Client) call(ctx context.Context, op Op, body []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	statsSink := ccam.ReqStatsFrom(ctx)
	traceID := ccam.TraceIDFrom(ctx)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return nil, ccam.ErrClosed
	}
	c.nextID++
	id := c.nextID

	// While the exchange is in flight, a context cancellation must
	// unblock the read: closing the connection is the only portable
	// interrupt, and it doubles as disconnect-propagation to the
	// server.
	watchDone := make(chan struct{})
	var watcher sync.WaitGroup
	watcher.Add(1)
	go func() {
		defer watcher.Done()
		select {
		case <-ctx.Done():
			c.closed.Store(true)
			c.conn.Close()
		case <-watchDone:
		}
	}()
	finish := func(b []byte, err error) ([]byte, error) {
		close(watchDone)
		watcher.Wait()
		if err != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return b, err
	}

	h := ReqHeader{
		ID: id, Op: op, DeadlineMS: deadlineMS(ctx),
		TraceID: traceID, Sampled: traceID != 0, WantStats: statsSink != nil,
	}
	if err := WriteFrame(c.bw, EncodeRequestHeader(h, body)); err != nil {
		return finish(nil, err)
	}
	if err := c.bw.Flush(); err != nil {
		return finish(nil, err)
	}
	payload, err := ReadFrame(c.br)
	if err != nil {
		return finish(nil, err)
	}
	gotID, respBody, stats, err := DecodeResponseStats(payload)
	if stats != nil && statsSink != nil {
		*statsSink = *stats
	}
	if err == nil && gotID != id {
		return finish(nil, fmt.Errorf("%w: response id %d for request %d", ErrBadRequest, gotID, id))
	}
	return finish(respBody, err)
}

// Ping round-trips an empty frame.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.call(ctx, OpPing, nil)
	return err
}

// Find fetches one record.
func (c *Client) Find(ctx context.Context, id ccam.NodeID) (*ccam.Record, error) {
	body, err := c.call(ctx, OpFind, EncodeIDBody(id))
	if err != nil {
		return nil, err
	}
	return DecodeRecordBody(body)
}

// Has reports whether a node is stored.
func (c *Client) Has(ctx context.Context, id ccam.NodeID) (bool, error) {
	body, err := c.call(ctx, OpHas, EncodeIDBody(id))
	if err != nil {
		return false, err
	}
	return DecodeBoolBody(body)
}

// GetSuccessors fetches all successor records of a node.
func (c *Client) GetSuccessors(ctx context.Context, id ccam.NodeID) ([]*ccam.Record, error) {
	body, err := c.call(ctx, OpGetSuccessors, EncodeIDBody(id))
	if err != nil {
		return nil, err
	}
	return DecodeRecordsBody(body)
}

// EvaluateRoute aggregates edge costs along a route.
func (c *Client) EvaluateRoute(ctx context.Context, route ccam.Route) (ccam.RouteAggregate, error) {
	body, err := c.call(ctx, OpEvaluateRoute, EncodeIDsBody(route))
	if err != nil {
		return ccam.RouteAggregate{}, err
	}
	return DecodeAggBody(body)
}

// RangeQuery fetches all records positioned inside the window.
func (c *Client) RangeQuery(ctx context.Context, rect ccam.Rect) ([]*ccam.Record, error) {
	body, err := c.call(ctx, OpRangeQuery, EncodeRectBody(rect))
	if err != nil {
		return nil, err
	}
	return DecodeRecordsBody(body)
}

// FindBatch fetches many records.
func (c *Client) FindBatch(ctx context.Context, ids []ccam.NodeID) ([]*ccam.Record, error) {
	body, err := c.call(ctx, OpFindBatch, EncodeIDsBody(ids))
	if err != nil {
		return nil, err
	}
	return DecodeRecordsBody(body)
}

// EvaluateRoutes aggregates many routes (positional results).
func (c *Client) EvaluateRoutes(ctx context.Context, routes []ccam.Route) ([]ccam.RouteAggregate, error) {
	body, err := c.call(ctx, OpEvaluateRoutes, EncodeRoutesBody(routes))
	if err != nil {
		return nil, err
	}
	return DecodeAggsBody(body)
}

// Query runs one CCAM-QL statement on the server.
func (c *Client) Query(ctx context.Context, src string) (*ccam.Result, error) {
	body, err := c.call(ctx, OpQuery, EncodeQueryBody(src, false))
	if err != nil {
		return nil, err
	}
	return DecodeResultBody(body)
}

// Explain plans one CCAM-QL statement without executing it.
func (c *Client) Explain(ctx context.Context, src string) (*ccam.Result, error) {
	body, err := c.call(ctx, OpQuery, EncodeQueryBody(src, true))
	if err != nil {
		return nil, err
	}
	return DecodeResultBody(body)
}

// Apply commits one transactional batch and returns the op count.
func (c *Client) Apply(ctx context.Context, ops []ApplyOp) (int, error) {
	reqBody, err := EncodeApplyBody(ops)
	if err != nil {
		return 0, err
	}
	body, err := c.call(ctx, OpApply, reqBody)
	if err != nil {
		return 0, err
	}
	n, err := DecodeUint32Body(body)
	return int(n), err
}

// HTTPClient speaks the JSON protocol. Unlike Client it is safe for
// concurrent use (http.Client pools connections underneath).
type HTTPClient struct {
	// Base is the server root, e.g. "http://127.0.0.1:7070".
	Base string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
}

func (c *HTTPClient) do(ctx context.Context, path string, in, out any) error {
	var body io.Reader
	method := http.MethodGet
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
		method = http.MethodPost
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Mirror the binary header's deadline budget so the server bounds
	// the query itself, not just the transport.
	if ms := deadlineMS(ctx); ms > 0 {
		req.Header.Set("X-Ccam-Deadline-Ms", fmt.Sprint(ms))
	}
	// Mirror the binary extended header: a ctx trace id travels as
	// X-Ccam-Trace (16 hex digits) and marks the request sampled; its
	// presence also asks for the stats field in the response.
	if tid := ccam.TraceIDFrom(ctx); tid != 0 {
		req.Header.Set(TraceHeader, fmt.Sprintf("%016x", tid))
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, MaxFrame))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return DecodeErrorResponse(raw, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return err
	}
	// A response struct embedding StatsField may carry the server's
	// per-request account; copy it into the ctx sink, if any.
	if sink := ccam.ReqStatsFrom(ctx); sink != nil {
		if sp, ok := out.(interface{ WireStats() *ccam.ReqStats }); ok {
			if st := sp.WireStats(); st != nil {
				*sink = *st
			}
		}
	}
	return nil
}

// Find fetches one record.
func (c *HTTPClient) Find(ctx context.Context, id ccam.NodeID) (*ccam.Record, error) {
	var out FindResponse
	if err := c.do(ctx, "/v1/find", FindRequest{ID: id}, &out); err != nil {
		return nil, err
	}
	return out.Record.Record(), nil
}

// Has reports whether a node is stored.
func (c *HTTPClient) Has(ctx context.Context, id ccam.NodeID) (bool, error) {
	var out HasResponse
	if err := c.do(ctx, "/v1/has", HasRequest{ID: id}, &out); err != nil {
		return false, err
	}
	return out.Has, nil
}

// GetSuccessors fetches all successor records of a node.
func (c *HTTPClient) GetSuccessors(ctx context.Context, id ccam.NodeID) ([]*ccam.Record, error) {
	var out RecordsResponse
	if err := c.do(ctx, "/v1/successors", SuccessorsRequest{ID: id}, &out); err != nil {
		return nil, err
	}
	return jsonRecords(out.Records), nil
}

// EvaluateRoute aggregates edge costs along a route.
func (c *HTTPClient) EvaluateRoute(ctx context.Context, route ccam.Route) (ccam.RouteAggregate, error) {
	var out RouteResponse
	if err := c.do(ctx, "/v1/route", RouteRequest{Route: route}, &out); err != nil {
		return ccam.RouteAggregate{}, err
	}
	return out.Aggregate.Aggregate(), nil
}

// RangeQuery fetches all records positioned inside the window.
func (c *HTTPClient) RangeQuery(ctx context.Context, rect ccam.Rect) ([]*ccam.Record, error) {
	var out RecordsResponse
	if err := c.do(ctx, "/v1/range", RangeRequest{Rect: rect}, &out); err != nil {
		return nil, err
	}
	return jsonRecords(out.Records), nil
}

// FindBatch fetches many records.
func (c *HTTPClient) FindBatch(ctx context.Context, ids []ccam.NodeID) ([]*ccam.Record, error) {
	var out RecordsResponse
	if err := c.do(ctx, "/v1/find-batch", FindBatchRequest{IDs: ids}, &out); err != nil {
		return nil, err
	}
	return jsonRecords(out.Records), nil
}

// EvaluateRoutes aggregates many routes (positional results).
func (c *HTTPClient) EvaluateRoutes(ctx context.Context, routes []ccam.Route) ([]ccam.RouteAggregate, error) {
	rr := make([][]ccam.NodeID, len(routes))
	for i, r := range routes {
		rr[i] = r
	}
	var out RoutesResponse
	if err := c.do(ctx, "/v1/routes", RoutesRequest{Routes: rr}, &out); err != nil {
		return nil, err
	}
	aggs := make([]ccam.RouteAggregate, len(out.Aggregates))
	for i, a := range out.Aggregates {
		aggs[i] = a.Aggregate()
	}
	return aggs, nil
}

// Query runs one CCAM-QL statement on the server.
func (c *HTTPClient) Query(ctx context.Context, src string) (*ccam.Result, error) {
	var out QueryResponse
	if err := c.do(ctx, "/v1/query", QueryRequest{Query: src}, &out); err != nil {
		return nil, err
	}
	return out.Result, nil
}

// Explain plans one CCAM-QL statement without executing it.
func (c *HTTPClient) Explain(ctx context.Context, src string) (*ccam.Result, error) {
	var out QueryResponse
	if err := c.do(ctx, "/v1/query", QueryRequest{Query: src, Explain: true}, &out); err != nil {
		return nil, err
	}
	return out.Result, nil
}

// Apply commits one transactional batch and returns the op count.
func (c *HTTPClient) Apply(ctx context.Context, ops []ApplyOp) (int, error) {
	var out ApplyResponse
	if err := c.do(ctx, "/v1/apply", ApplyRequest{Ops: ops}, &out); err != nil {
		return 0, err
	}
	return out.Applied, nil
}

// Info describes the served store.
func (c *HTTPClient) Info(ctx context.Context) (InfoResponse, error) {
	var out InfoResponse
	err := c.do(ctx, "/v1/info", nil, &out)
	return out, err
}

func jsonRecords(rs []RecordJSON) []*ccam.Record {
	out := make([]*ccam.Record, len(rs))
	for i, r := range rs {
		out[i] = r.Record()
	}
	return out
}
