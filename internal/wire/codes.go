// Package wire is the shared wire codec of the ccam-serve query
// service: the stable error-code table, the JSON request/response
// bodies of the HTTP protocol, and the length-prefixed binary framing
// — one codec, used by the server (cmd/ccam-serve via internal/server)
// and by clients (wire.Client, wire.HTTPClient, cmd/ccam-bench -exp
// serve).
//
// Error contract: every exported ccam sentinel maps to exactly one
// stable Code (and each Code to one HTTP status) in the table below.
// Codes — not messages, not HTTP statuses — are the wire contract:
// decoding a non-OK response on either protocol yields an error that
// wraps the original sentinel, so client-side errors.Is(err,
// ccam.ErrNotFound), errors.Is(err, ccam.ErrOverloaded) etc. keep
// working across the network exactly as they do in-process.
package wire

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"ccam"
)

// Code is a stable wire error code. Codes are part of the protocol:
// existing values never change meaning; new codes are only appended.
type Code uint8

// Wire error codes.
const (
	// CodeOK reports success.
	CodeOK Code = 0
	// CodeNotFound: a node, edge or path the request named is absent
	// (ccam.ErrNotFound).
	CodeNotFound Code = 1
	// CodeNodeExists: an insert of a node that is already stored
	// (ccam.ErrNodeExists).
	CodeNodeExists Code = 2
	// CodeEdgeExists: an insert of an edge that is already stored
	// (ccam.ErrEdgeExists).
	CodeEdgeExists Code = 3
	// CodeEdgeMissing: an edge operation on an absent edge
	// (ccam.ErrEdgeMissing).
	CodeEdgeMissing Code = 4
	// CodeCanceled: the request's context was canceled — usually the
	// client disconnected mid-query (context.Canceled).
	CodeCanceled Code = 5
	// CodeDeadline: the request's deadline expired before the query
	// finished (context.DeadlineExceeded).
	CodeDeadline Code = 6
	// CodeOverloaded: admission control shed the request before it ran
	// (ccam.ErrOverloaded); retry after a backoff.
	CodeOverloaded Code = 7
	// CodeClosed: the store behind the server is closed or draining
	// (ccam.ErrClosed).
	CodeClosed Code = 8
	// CodeChecksum: a stored page failed checksum verification
	// (ccam.ErrChecksum).
	CodeChecksum Code = 9
	// CodeCorrupted: a stored page's structure is invalid
	// (ccam.ErrCorruptedPage).
	CodeCorrupted Code = 10
	// CodeNoPath: a search query found no path (ccam.ErrNoPath).
	CodeNoPath Code = 11
	// CodeBadRequest: the request itself was malformed (unknown op,
	// truncated frame, invalid JSON, oversized payload).
	CodeBadRequest Code = 12
	// CodeInternal: any other server-side failure.
	CodeInternal Code = 13
	// CodeInvalidTour: a tour evaluation got a malformed tour
	// (ccam.ErrInvalidTour).
	CodeInvalidTour Code = 14
	// CodeParse: a CCAM-QL statement the parser rejected
	// (ccam.ErrQueryParse).
	CodeParse Code = 15
	// CodeUnsupported: a CCAM-QL statement that parses but that the
	// planner cannot build a plan for (ccam.ErrQueryUnsupported).
	CodeUnsupported Code = 16
)

// ErrBadRequest is the sentinel behind CodeBadRequest: the request was
// malformed and never reached the store.
var ErrBadRequest = errors.New("wire: bad request")

// ErrInternal is the sentinel behind CodeInternal: an unclassified
// server-side failure.
var ErrInternal = errors.New("wire: internal server error")

// codeEntry is one row of the error table: the code, its stable
// snake_case name (the JSON "code" field), the HTTP status the JSON
// protocol responds with, and the sentinel the code encodes/decodes.
type codeEntry struct {
	code     Code
	name     string
	status   int
	sentinel error
}

// codeTable is the single source of truth mapping exported sentinels
// to stable wire codes and HTTP statuses. Order matters for encoding:
// CodeOf returns the first row whose sentinel matches, so more
// specific sentinels (ErrNodeExists before the generic ErrNotFound
// wrapping) must come first.
var codeTable = []codeEntry{
	{CodeOverloaded, "overloaded", http.StatusServiceUnavailable, ccam.ErrOverloaded},
	{CodeClosed, "closed", http.StatusServiceUnavailable, ccam.ErrClosed},
	{CodeCanceled, "canceled", 499 /* client closed request */, context.Canceled},
	{CodeDeadline, "deadline_exceeded", http.StatusGatewayTimeout, context.DeadlineExceeded},
	{CodeNodeExists, "node_exists", http.StatusConflict, ccam.ErrNodeExists},
	{CodeEdgeExists, "edge_exists", http.StatusConflict, ccam.ErrEdgeExists},
	{CodeEdgeMissing, "edge_missing", http.StatusNotFound, ccam.ErrEdgeMissing},
	{CodeNotFound, "not_found", http.StatusNotFound, ccam.ErrNotFound},
	{CodeNoPath, "no_path", http.StatusUnprocessableEntity, ccam.ErrNoPath},
	{CodeChecksum, "checksum", http.StatusInternalServerError, ccam.ErrChecksum},
	{CodeCorrupted, "corrupted", http.StatusInternalServerError, ccam.ErrCorruptedPage},
	{CodeInvalidTour, "invalid_tour", http.StatusUnprocessableEntity, ccam.ErrInvalidTour},
	{CodeParse, "parse_error", http.StatusBadRequest, ccam.ErrQueryParse},
	{CodeUnsupported, "unsupported_query", http.StatusBadRequest, ccam.ErrQueryUnsupported},
	{CodeBadRequest, "bad_request", http.StatusBadRequest, ErrBadRequest},
	{CodeInternal, "internal", http.StatusInternalServerError, ErrInternal},
}

// CodeOf classifies an error into its wire code. A nil error is
// CodeOK; an error matching no table row is CodeInternal.
func CodeOf(err error) Code {
	if err == nil {
		return CodeOK
	}
	for _, e := range codeTable {
		if errors.Is(err, e.sentinel) {
			return e.code
		}
	}
	return CodeInternal
}

// entry returns the table row of c, falling back to CodeInternal for
// unknown codes (a newer server may send codes this client predates).
func (c Code) entry() codeEntry {
	for _, e := range codeTable {
		if e.code == c {
			return e
		}
	}
	return codeEntry{c, fmt.Sprintf("code_%d", c), http.StatusInternalServerError, ErrInternal}
}

// String returns the stable snake_case name of the code ("not_found",
// "overloaded", ...), the JSON protocol's "code" field.
func (c Code) String() string {
	if c == CodeOK {
		return "ok"
	}
	return c.entry().name
}

// HTTPStatus returns the HTTP status the JSON protocol pairs with the
// code (200 for CodeOK).
func (c Code) HTTPStatus() int {
	if c == CodeOK {
		return http.StatusOK
	}
	return c.entry().status
}

// Sentinel returns the in-process sentinel the code stands for, so
// decoded errors satisfy errors.Is against it. CodeOK has none (nil).
func (c Code) Sentinel() error {
	if c == CodeOK {
		return nil
	}
	return c.entry().sentinel
}

// CodeFromName resolves a stable code name back to its Code (the JSON
// decode path). Unknown names resolve to CodeInternal.
func CodeFromName(name string) Code {
	if name == "ok" {
		return CodeOK
	}
	for _, e := range codeTable {
		if e.name == name {
			return e.code
		}
	}
	return CodeInternal
}

// Error is the client-side form of a non-OK response: the wire code
// plus the server's message. It wraps the code's sentinel, so
// errors.Is(err, ccam.ErrNotFound) (etc.) holds after a round trip
// over either protocol.
type Error struct {
	Code Code
	// Message is the server's human-readable error string.
	Message string
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Message == "" {
		return fmt.Sprintf("wire: %s", e.Code)
	}
	return fmt.Sprintf("wire: %s: %s", e.Code, e.Message)
}

// Unwrap exposes the code's sentinel to errors.Is.
func (e *Error) Unwrap() error { return e.Code.Sentinel() }

// RemoteError builds the error a client surfaces for a non-OK
// response. CodeOK yields nil.
func RemoteError(c Code, msg string) error {
	if c == CodeOK {
		return nil
	}
	return &Error{Code: c, Message: msg}
}
