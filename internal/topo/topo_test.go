package topo

import (
	"math/rand"
	"testing"

	"ccam/internal/graph"
	"ccam/internal/netfile"
)

func roadMap(t *testing.T) *graph.Network {
	t.Helper()
	g, err := graph.RoadMap(graph.MinneapolisLikeOpts())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func build(t *testing.T, g *graph.Network, kind Kind) *Method {
	t.Helper()
	m, err := New(Config{Kind: kind, PageSize: 1024, PoolPages: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Build(g); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNames(t *testing.T) {
	for kind, want := range map[Kind]string{DFS: "dfs-am", BFS: "bfs-am", WDFS: "wdfs-am"} {
		m, err := New(Config{Kind: kind, PageSize: 512})
		if err != nil {
			t.Fatal(err)
		}
		if m.Name() != want {
			t.Errorf("Name(%v) = %q, want %q", kind, m.Name(), want)
		}
	}
	if _, err := New(Config{Kind: Kind(99)}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestBuildCompleteAndSearchable(t *testing.T) {
	g := roadMap(t)
	for _, kind := range []Kind{DFS, BFS, WDFS} {
		t.Run(kind.String(), func(t *testing.T) {
			m := build(t, g, kind)
			if m.File().NumNodes() != g.NumNodes() {
				t.Fatalf("file nodes = %d, want %d", m.File().NumNodes(), g.NumNodes())
			}
			for _, id := range g.NodeIDs()[:20] {
				rec, err := m.File().Find(id)
				if err != nil {
					t.Fatalf("Find(%d): %v", id, err)
				}
				if len(rec.Succs) != len(g.Successors(id)) {
					t.Fatalf("node %d succ count mismatch", id)
				}
			}
		})
	}
}

func TestCRRRanking(t *testing.T) {
	// DFS clustering beats BFS clustering on road networks: BFS levels
	// spread neighbors across pages (the paper measures BFS-AM CRR ~0.1
	// vs DFS-AM ~0.6 at 1k).
	g := roadMap(t)
	dfs := build(t, g, DFS)
	bfs := build(t, g, BFS)
	dfsCRR := graph.CRR(g, dfs.File().Placement())
	bfsCRR := graph.CRR(g, bfs.File().Placement())
	if dfsCRR <= bfsCRR {
		t.Fatalf("DFS CRR %.4f should exceed BFS CRR %.4f", dfsCRR, bfsCRR)
	}
	if bfsCRR > 0.35 {
		t.Errorf("BFS CRR %.4f implausibly high", bfsCRR)
	}
	if dfsCRR < 0.4 {
		t.Errorf("DFS CRR %.4f implausibly low", dfsCRR)
	}
	t.Logf("DFS=%.4f BFS=%.4f", dfsCRR, bfsCRR)
}

func TestWDFSUsesWeights(t *testing.T) {
	g := roadMap(t)
	rng := rand.New(rand.NewSource(6))
	routes, err := graph.RandomWalkRoutes(g, 100, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := graph.ApplyRouteWeights(g, routes); err != nil {
		t.Fatal(err)
	}
	wdfs := build(t, g, WDFS)
	dfs := build(t, g, DFS)
	// WDFS should capture at least as much *weighted* residue as plain
	// DFS does on average (same traversal family, weight-guided).
	wd := graph.WCRR(g, wdfs.File().Placement())
	d := graph.WCRR(g, dfs.File().Placement())
	t.Logf("WDFS WCRR=%.4f DFS WCRR=%.4f", wd, d)
	if wd < d*0.8 {
		t.Errorf("WDFS WCRR %.4f much worse than DFS %.4f", wd, d)
	}
}

func TestInsertDelete(t *testing.T) {
	g := roadMap(t)
	m := build(t, g, DFS)
	ids := g.NodeIDs()
	rng := rand.New(rand.NewSource(2))
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, id := range ids[:30] {
		op, err := netfile.InsertOpFromNode(g, id)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Delete(id, netfile.FirstOrder); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
		if m.File().Has(id) {
			t.Fatalf("node %d still present", id)
		}
		if err := m.Insert(op, netfile.FirstOrder); err != nil {
			t.Fatalf("Insert(%d): %v", id, err)
		}
		rec, err := m.File().Find(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Succs) != len(g.Successors(id)) || len(rec.Preds) != len(g.Predecessors(id)) {
			t.Fatalf("node %d lists corrupted by delete/insert round trip", id)
		}
	}
	if m.File().NumNodes() != g.NumNodes() {
		t.Fatalf("node count drifted: %d vs %d", m.File().NumNodes(), g.NumNodes())
	}
}

func TestInsertBeforeBuild(t *testing.T) {
	m, _ := New(Config{Kind: DFS, PageSize: 512})
	if err := m.Insert(&netfile.InsertOp{Rec: &netfile.Record{ID: 1}}, netfile.FirstOrder); err == nil {
		t.Fatal("insert before build accepted")
	}
	if err := m.Delete(1, netfile.FirstOrder); err == nil {
		t.Fatal("delete before build accepted")
	}
}

func TestEdgeOps(t *testing.T) {
	g := roadMap(t)
	m := build(t, g, DFS)
	e := g.Edges()[0]
	if err := m.DeleteEdge(e.From, e.To, netfile.FirstOrder); err != nil {
		t.Fatal(err)
	}
	if err := m.InsertEdge(e.From, e.To, float32(e.Cost), netfile.FirstOrder); err != nil {
		t.Fatal(err)
	}
	rec, err := m.File().Find(e.From)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.HasSucc(e.To) {
		t.Fatal("edge lost in round trip")
	}
	// Before build: errors.
	unbuilt, _ := New(Config{Kind: BFS, PageSize: 512})
	if err := unbuilt.InsertEdge(1, 2, 1, netfile.FirstOrder); err == nil {
		t.Fatal("insert edge before build accepted")
	}
	if err := unbuilt.DeleteEdge(1, 2, netfile.FirstOrder); err == nil {
		t.Fatal("delete edge before build accepted")
	}
}

func TestInsertIntoFullFileSplits(t *testing.T) {
	// Keep inserting heavily connected nodes into a small file until a
	// page split must occur; the file must stay consistent.
	g := graph.Grid(4, 4)
	m, err := New(Config{Kind: DFS, PageSize: 512, PoolPages: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Build(g); err != nil {
		t.Fatal(err)
	}
	pagesBefore := m.File().NumPages()
	baseSucc := len(g.Successors(5))
	basePred := len(g.Predecessors(5))
	next := graph.NodeID(100)
	// Chain new nodes onto node 5, growing its pred/succ lists until
	// its page overflows and splits.
	for i := 0; i < 30; i++ {
		op := &netfile.InsertOp{
			Rec: &netfile.Record{
				ID:    next,
				Succs: []netfile.SuccEntry{{To: 5, Cost: 1}},
				Preds: []graph.NodeID{5},
			},
			PredCosts: []float32{1},
		}
		if err := m.Insert(op, netfile.FirstOrder); err != nil {
			t.Fatalf("insert %d: %v", next, err)
		}
		next++
	}
	if m.File().NumPages() <= pagesBefore {
		t.Fatalf("no split occurred: %d pages", m.File().NumPages())
	}
	// Node 5 carries all the new links.
	rec, err := m.File().Find(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Preds) != basePred+30 || len(rec.Succs) != baseSucc+30 {
		t.Fatalf("node 5 lists = %d/%d, want %d/%d", len(rec.Succs), len(rec.Preds), baseSucc+30, basePred+30)
	}
	// All inserted nodes findable.
	for id := graph.NodeID(100); id < next; id++ {
		if _, err := m.File().Find(id); err != nil {
			t.Fatalf("Find(%d): %v", id, err)
		}
	}
}

func TestDeleteToEmptyFreesPages(t *testing.T) {
	g := graph.Grid(3, 3)
	m := build(t, g, BFS)
	for _, id := range g.NodeIDs() {
		if err := m.Delete(id, netfile.FirstOrder); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
	}
	if m.File().NumNodes() != 0 {
		t.Fatal("nodes remain")
	}
	if m.File().NumPages() != 0 {
		t.Fatalf("%d pages remain after emptying", m.File().NumPages())
	}
}

func TestCurveOrderings(t *testing.T) {
	g := roadMap(t)
	hil := build(t, g, Hilbert)
	zcv := build(t, g, ZCurve)
	dfs := build(t, g, DFS)
	hc := graph.CRR(g, hil.File().Placement())
	zc := graph.CRR(g, zcv.File().Placement())
	dc := graph.CRR(g, dfs.File().Placement())
	t.Logf("hilbert=%.4f zcurve=%.4f dfs=%.4f", hc, zc, dc)
	// Hilbert's adjacency property makes it at least as good as the Z
	// curve on road networks.
	if hc < zc-0.02 {
		t.Errorf("hilbert %.4f clearly below zcurve %.4f", hc, zc)
	}
	// Both are proximity orderings: on a road map they land in the
	// grid-file territory, well above BFS scatter.
	if hc < 0.3 || zc < 0.25 {
		t.Errorf("curve orderings implausibly low: %.4f / %.4f", hc, zc)
	}
	if hil.Name() != "hilbert-am" || zcv.Name() != "zcurve-am" {
		t.Fatal("names wrong")
	}
	// Files are complete and searchable.
	for _, m := range []*Method{hil, zcv} {
		if m.File().NumNodes() != g.NumNodes() {
			t.Fatalf("%s: %d nodes", m.Name(), m.File().NumNodes())
		}
		if _, err := m.File().Find(g.NodeIDs()[17]); err != nil {
			t.Fatal(err)
		}
	}
}
