// Package topo implements the ordering-based baselines: the paper's
// topological orderings — DFS-AM and BFS-AM (extensions of
// topological-ordering based files to general graphs, ordering nodes by
// depth-first / breadth-first traversal from a random starting node)
// and WDFS-AM (depth-first search following heaviest edge weights
// first) — plus two proximity orderings in the spirit of the
// space-filling-curve access methods evaluated by the paper's companion
// study [23]: Hilbert-AM and ZCurve-AM order nodes by the Hilbert /
// Z-order index of their coordinates. Nodes are packed into pages
// sequentially in the chosen order.
package topo

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"ccam/internal/geom"
	"ccam/internal/graph"
	"ccam/internal/netfile"
	"ccam/internal/partition"
	"ccam/internal/storage"
)

// Kind selects the traversal order.
type Kind int

// Ordering kinds.
const (
	DFS Kind = iota
	BFS
	WDFS
	// Hilbert orders nodes along the Hilbert curve of their positions.
	Hilbert
	// ZCurve orders nodes along the Z-order (Morton) curve.
	ZCurve
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case DFS:
		return "dfs-am"
	case BFS:
		return "bfs-am"
	case WDFS:
		return "wdfs-am"
	case Hilbert:
		return "hilbert-am"
	case ZCurve:
		return "zcurve-am"
	default:
		return fmt.Sprintf("topo(%d)", int(k))
	}
}

// Config parameterizes a topological access method.
type Config struct {
	// Kind is the traversal order (DFS, BFS or WDFS).
	Kind Kind
	// PageSize is the disk block size in bytes.
	PageSize int
	// PoolPages is the buffer pool capacity (default 32).
	PoolPages int
	// Seed selects the random starting node.
	Seed int64
	// Store optionally supplies the data page store.
	Store storage.Store
}

// Method is a topological-ordering access method over the shared data
// file. It implements netfile.AccessMethod.
type Method struct {
	cfg Config
	f   *netfile.File
	rng *rand.Rand
}

var _ netfile.AccessMethod = (*Method)(nil)

// New returns an unbuilt instance.
func New(cfg Config) (*Method, error) {
	if cfg.Kind < DFS || cfg.Kind > ZCurve {
		return nil, fmt.Errorf("topo: unknown kind %d", cfg.Kind)
	}
	return &Method{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Name implements netfile.AccessMethod.
func (m *Method) Name() string { return m.cfg.Kind.String() }

// File implements netfile.AccessMethod.
func (m *Method) File() *netfile.File { return m.f }

// Build implements netfile.AccessMethod: order the nodes by the
// configured traversal from a random starting node and pack them into
// pages in that order.
func (m *Method) Build(g *graph.Network) error {
	f, err := netfile.Create(netfile.Options{
		PageSize:  m.cfg.PageSize,
		PoolPages: m.cfg.PoolPages,
		Bounds:    g.Bounds(),
		Store:     m.cfg.Store,
	})
	if err != nil {
		return err
	}
	m.f = f
	ids := g.NodeIDs()
	if len(ids) == 0 {
		return nil
	}
	start := ids[m.rng.Intn(len(ids))]
	var order []graph.NodeID
	switch m.cfg.Kind {
	case DFS:
		order = partition.DFSOrder(g, start, false)
	case WDFS:
		order = partition.DFSOrder(g, start, true)
	case BFS:
		order = partition.BFSOrder(g, start)
	case Hilbert, ZCurve:
		order = m.curveOrder(g, ids)
	}
	groups, err := partition.PackSequential(order, netfile.StoredSizer(g), netfile.PageBudget(m.cfg.PageSize))
	if err != nil {
		return fmt.Errorf("topo: pack %s order: %w", m.cfg.Kind, err)
	}
	return m.f.BulkLoad(g, groups)
}

// Insert implements netfile.AccessMethod. Topological files have no
// reclustering machinery; the new record is placed on the neighbor
// page with the most neighbors of x that has space (keeping the
// traversal locality it was built with), and overflow splits a page in
// half by insertion order. The policy argument is accepted for
// interface compatibility but only first-order behaviour exists.
func (m *Method) Insert(op *netfile.InsertOp, _ netfile.Policy) error {
	if err := op.Validate(); err != nil {
		return err
	}
	if m.f == nil {
		return errors.New("topo: insert before Build")
	}
	rec := op.Rec
	need := rec.EncodedSize() + storage.PerRecordOverhead
	pid, ok, err := m.f.SelectPageWithMostNeighbors(rec.Neighbors(), need)
	if err != nil {
		return err
	}
	if !ok {
		pid, ok = m.f.FindPageWithSpace(need)
		if !ok {
			pid, err = m.f.AllocatePage()
			if err != nil {
				return err
			}
		}
	}
	if err := m.f.InsertRecordAt(rec, pid); err != nil {
		return err
	}
	return m.f.UpdateNeighborLinks(op, m.splitPage)
}

// Delete implements netfile.AccessMethod.
func (m *Method) Delete(id graph.NodeID, _ netfile.Policy) error {
	if m.f == nil {
		return errors.New("topo: delete before Build")
	}
	pid, err := m.f.PageOf(id)
	if err != nil {
		return err
	}
	rec, err := m.f.DeleteRecord(id)
	if err != nil {
		return err
	}
	if err := m.f.RemoveNeighborLinks(rec); err != nil {
		return err
	}
	// Underflow: free empty pages; otherwise leave in place (delay
	// reorganization, first-order guiding principle).
	used, err := m.f.UsedBytesOn(pid)
	if err != nil {
		return err
	}
	if used == 0 {
		return m.f.FreePage(pid)
	}
	return nil
}

// curveOrder sorts the nodes by the space-filling-curve index of their
// coordinates.
func (m *Method) curveOrder(g *graph.Network, ids []graph.NodeID) []graph.NodeID {
	quant := geom.NewQuantizer(g.Bounds())
	key := make(map[graph.NodeID]uint64, len(ids))
	for _, id := range ids {
		n, err := g.Node(id)
		if err != nil {
			continue
		}
		if m.cfg.Kind == Hilbert {
			key[id] = quant.Hilbert(n.Pos)
		} else {
			key[id] = quant.Z(n.Pos)
		}
	}
	order := append([]graph.NodeID(nil), ids...)
	sort.Slice(order, func(i, j int) bool {
		if key[order[i]] != key[order[j]] {
			return key[order[i]] < key[order[j]]
		}
		return order[i] < order[j]
	})
	return order
}

// splitPage halves an overflowing page by slot order, preserving
// sequential locality.
func (m *Method) splitPage(pid storage.PageID) error {
	ids, err := m.f.NodesOnPage(pid)
	if err != nil {
		return err
	}
	if len(ids) < 2 {
		return fmt.Errorf("topo: cannot split page %d with %d records", pid, len(ids))
	}
	newPid, err := m.f.AllocatePage()
	if err != nil {
		return err
	}
	for _, id := range ids[len(ids)/2:] {
		if err := m.f.MoveRecord(id, newPid); err != nil {
			return fmt.Errorf("topo: split page %d: %w", pid, err)
		}
	}
	return nil
}

// InsertEdge implements netfile.AccessMethod: the records of both
// endpoints are updated in place; page overflow splits sequentially.
func (m *Method) InsertEdge(from, to graph.NodeID, cost float32, _ netfile.Policy) error {
	if m.f == nil {
		return errors.New("topo: insert edge before Build")
	}
	return m.f.AddEdgeRecords(from, to, cost, m.splitPage)
}

// DeleteEdge implements netfile.AccessMethod.
func (m *Method) DeleteEdge(from, to graph.NodeID, _ netfile.Policy) error {
	if m.f == nil {
		return errors.New("topo: delete edge before Build")
	}
	return m.f.RemoveEdgeRecords(from, to)
}
