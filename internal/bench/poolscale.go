package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ccam/internal/buffer"
	"ccam/internal/graph"
	"ccam/internal/netfile"
	"ccam/internal/partition"
	"ccam/internal/storage"
)

// PoolScaleConfig configures the pool-scale experiment: how does
// concurrent route-evaluation read throughput scale with workers under
// the single-latch pool, the sharded pool, and the sharded pool with
// connectivity-aware PAG prefetch, on a disk-latency-simulated store?
type PoolScaleConfig struct {
	Setup Setup
	// Nodes is the network size floor (rounded up to a full lattice;
	// default 262144, the scale of the serve experiment).
	Nodes int
	// PageSize is the data block size (default 2048).
	PageSize int
	// PoolPages is the buffer pool capacity (default 256) — a small
	// fraction of the data pages, so the workload misses constantly and
	// the pool's concurrency actually matters.
	PoolPages int
	// Shards is the shard count of the sharded variants (0 sizes
	// automatically from the machine and the pool).
	Shards int
	// Workers are the concurrency levels swept (default 1, 2, 4, 8, 16).
	Workers []int
	// Duration is the measured window per (variant, workers) point
	// (default 2s).
	Duration time.Duration
	// ReadLatency is the simulated disk latency charged per physical
	// page read (default 4ms, a mid-90s disk access — the paper's
	// disk-resident regime; it also dwarfs OS timer granularity, so the
	// sleep is honest at every concurrency level).
	ReadLatency time.Duration
	// RouteCount and RouteLen shape the random-walk workload (defaults
	// 4096 routes of 64 nodes — long enough that a route's unavoidable
	// first-page miss does not dominate its prefetchable crossings).
	RouteCount, RouteLen int
}

// PoolScaleRow is one (variant, workers) measurement.
type PoolScaleRow struct {
	Variant    string  `json:"variant"`
	Workers    int     `json:"workers"`
	Shards     int     `json:"shards"`
	Routes     int64   `json:"routes"`
	RoutesPerS float64 `json:"routes_per_s"`
	HopsPerS   float64 `json:"hops_per_s"`
	HitRate    float64 `json:"hit_rate"`
	Prefetched int64   `json:"prefetched,omitempty"`
	PfUseful   int64   `json:"prefetch_useful,omitempty"`
	// Speedup is this row's hop throughput over the single-latch pool's
	// at the same worker count.
	Speedup float64 `json:"speedup_vs_single"`
}

// PoolScaleResult holds the sweep. Rows are grouped by variant in
// worker order: single-latch, sharded, sharded-prefetch.
type PoolScaleResult struct {
	Nodes       int            `json:"nodes"`
	Pages       int            `json:"pages"`
	PageSize    int            `json:"page_size"`
	PoolPages   int            `json:"pool_pages"`
	ReadLatency string         `json:"read_latency"`
	Seed        int64          `json:"seed"`
	Rows        []PoolScaleRow `json:"rows"`
}

// poolScaleVariants is the fixed comparison: the seed repo's
// single-latch pool, page-hash sharding alone, and sharding plus PAG
// prefetch.
type poolScaleVariant struct {
	name     string
	shards   int
	prefetch bool
}

// RunPoolScale measures concurrent route-evaluation throughput over one
// bulk-loaded CCAM file per (variant, workers) point. Every point
// reopens the file over the same page store, so all variants read
// identical bytes and differ only in buffer-pool configuration; the
// store charges ReadLatency per physical read, putting the run in the
// paper's disk-resident regime where a buffered page is worth
// something.
func RunPoolScale(cfg PoolScaleConfig) (*PoolScaleResult, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 262144
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = 2048
	}
	if cfg.PoolPages <= 0 {
		cfg.PoolPages = 256
	}
	if cfg.Shards <= 0 {
		// Floor the auto-sizing at 8: the comparison should exercise the
		// sharded code path even on single-core CI machines, where
		// AutoShards would collapse it back to one latch.
		cfg.Shards = buffer.AutoShards(cfg.PoolPages)
		if cfg.Shards < 8 {
			cfg.Shards = 8
		}
	}
	if len(cfg.Workers) == 0 {
		cfg.Workers = []int{1, 2, 4, 8, 16}
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.ReadLatency <= 0 {
		cfg.ReadLatency = 4 * time.Millisecond
	}
	if cfg.RouteCount <= 0 {
		cfg.RouteCount = 4096
	}
	if cfg.RouteLen <= 0 {
		cfg.RouteLen = 64
	}

	// Build the network and cluster it once; the multilevel partitioner
	// over the full worker pool keeps the setup fast at 262k nodes.
	opts := cfg.Setup.MapOpts
	side := 1
	for side*side < cfg.Nodes {
		side++
	}
	opts.Rows, opts.Cols = side, side
	g, err := graph.RoadMap(opts)
	if err != nil {
		return nil, err
	}
	groups, err := partition.ClusterNodesIntoPagesOpts(g, netfile.StoredSizer(g), netfile.PageBudget(cfg.PageSize),
		&partition.Multilevel{}, partition.ClusterOptions{Seed: cfg.Setup.Seed})
	if err != nil {
		return nil, err
	}
	st := storage.NewMemStore(cfg.PageSize)
	f, err := netfile.Create(netfile.Options{PageSize: cfg.PageSize, PoolPages: cfg.PoolPages, Bounds: g.Bounds(), Store: st})
	if err != nil {
		return nil, err
	}
	if err := f.BulkLoad(g, groups); err != nil {
		return nil, err
	}
	if err := f.Flush(); err != nil {
		return nil, err
	}
	res := &PoolScaleResult{
		Nodes:       g.NumNodes(),
		Pages:       f.NumPages(),
		PageSize:    cfg.PageSize,
		PoolPages:   cfg.PoolPages,
		ReadLatency: cfg.ReadLatency.String(),
		Seed:        cfg.Setup.Seed,
	}

	rng := rand.New(rand.NewSource(cfg.Setup.Seed))
	routes, err := graph.RandomWalkRoutes(g, cfg.RouteCount, cfg.RouteLen, rng)
	if err != nil {
		return nil, err
	}

	variants := []poolScaleVariant{
		{"single-latch", 1, false},
		{"sharded", cfg.Shards, false},
		{"sharded-prefetch", cfg.Shards, true},
	}
	singleHops := map[int]float64{}
	for _, v := range variants {
		for _, w := range cfg.Workers {
			row, err := runPoolScalePoint(st, cfg, v, w, routes)
			if err != nil {
				return nil, fmt.Errorf("bench: pool-scale %s at %d workers: %w", v.name, w, err)
			}
			if v.name == "single-latch" {
				singleHops[w] = row.HopsPerS
			}
			if base := singleHops[w]; base > 0 {
				row.Speedup = row.HopsPerS / base
			}
			res.Rows = append(res.Rows, *row)
		}
	}
	return res, nil
}

// runPoolScalePoint reopens the store under one pool configuration and
// drives it with workers closed-loop route evaluators for the window.
func runPoolScalePoint(st *storage.MemStore, cfg PoolScaleConfig, v poolScaleVariant, workers int, routes []graph.Route) (*PoolScaleRow, error) {
	// The open scans every page to rebuild the indexes and hints; that
	// setup reads with the latency off so points stay cheap.
	st.SetReadLatency(0)
	f, err := netfile.OpenFromStoreOpts(st, netfile.Options{
		PoolPages:  cfg.PoolPages,
		PoolShards: v.shards,
		Prefetch:   v.prefetch,
		// Prefetch reads sleep the simulated latency too, so covering
		// the demand workers' miss streams takes real read concurrency:
		// a speculative read only hides latency if it starts the moment
		// it is suggested, which needs an idle worker at every miss.
		PrefetchWorkers: 8 * workers,
	})
	if err != nil {
		return nil, err
	}
	defer f.Pool().Close()
	st.SetReadLatency(cfg.ReadLatency)
	defer st.SetReadLatency(0)

	// Each worker walks its own shuffled order over the shared route set.
	// Independent permutations keep the workload honest: with a shared
	// or strided order, fast workers trail slow ones through still-warm
	// pages and the sweep measures cache-riding, not pool concurrency.
	orders := make([][]int, workers)
	for wi := range orders {
		r := rand.New(rand.NewSource(cfg.Setup.Seed + int64(wi)*7919))
		orders[wi] = r.Perm(len(routes))
	}

	s0 := f.Pool().Stats()
	pf0 := f.Pool().PrefetchStats()
	var done, hops atomic.Int64
	var firstErr atomic.Value
	start := time.Now()
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			ctx := context.Background()
			order := orders[wi]
			for i := 0; time.Since(start) < cfg.Duration; i++ {
				r := routes[order[i%len(order)]]
				if _, err := f.EvaluateRouteCtx(ctx, r); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				done.Add(1)
				hops.Add(int64(len(r)))
			}
		}(wi)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, err
	}
	ps := f.Pool().Stats().Sub(s0)
	hitRate, _ := ps.HitRate()
	pf := f.Pool().PrefetchStats()
	return &PoolScaleRow{
		Variant:    v.name,
		Workers:    workers,
		Shards:     v.shards,
		Routes:     done.Load(),
		RoutesPerS: float64(done.Load()) / elapsed,
		HopsPerS:   float64(hops.Load()) / elapsed,
		HitRate:    hitRate,
		Prefetched: pf.Loaded - pf0.Loaded,
		PfUseful:   pf.Useful - pf0.Useful,
	}, nil
}

// Print writes the sweep as a plain-text table.
func (r *PoolScaleResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Pool scale: route-evaluation throughput vs workers (%d nodes on %d pages, pool = %d pages, read latency = %s)\n",
		r.Nodes, r.Pages, r.PoolPages, r.ReadLatency)
	fmt.Fprintf(w, "%-18s %8s %7s %12s %12s %8s %11s %10s %8s\n",
		"variant", "workers", "shards", "routes/s", "hops/s", "hitrate", "prefetched", "pf-useful", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-18s %8d %7d %12.0f %12.0f %8.3f %11d %10d %7.2fx\n",
			row.Variant, row.Workers, row.Shards, row.RoutesPerS, row.HopsPerS,
			row.HitRate, row.Prefetched, row.PfUseful, row.Speedup)
	}
}

// WriteJSON emits the machine-readable form consumed by CI.
func (r *PoolScaleResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Check enforces the experiment's regression gate: at the largest
// worker count, the sharded pool with prefetch must reach at least
// minSpeedup times the single-latch pool's read throughput, and no
// point may have failed to produce work.
func (r *PoolScaleResult) Check(minSpeedup float64) error {
	if len(r.Rows) == 0 {
		return fmt.Errorf("bench: pool-scale check: no rows")
	}
	maxW := 0
	byKey := map[string]PoolScaleRow{}
	for _, row := range r.Rows {
		if row.Routes == 0 {
			return fmt.Errorf("bench: pool-scale check: %s at %d workers evaluated no routes", row.Variant, row.Workers)
		}
		if row.Workers > maxW {
			maxW = row.Workers
		}
		byKey[fmt.Sprintf("%s/%d", row.Variant, row.Workers)] = row
	}
	single, okS := byKey[fmt.Sprintf("single-latch/%d", maxW)]
	pf, okP := byKey[fmt.Sprintf("sharded-prefetch/%d", maxW)]
	if !okS || !okP {
		return fmt.Errorf("bench: pool-scale check: incomplete variant set at %d workers", maxW)
	}
	if speedup := pf.HopsPerS / single.HopsPerS; speedup < minSpeedup {
		return fmt.Errorf("bench: pool-scale check: sharded-prefetch speedup %.2fx below %.2fx at %d workers (%.0f vs %.0f hops/s)",
			speedup, minSpeedup, maxW, pf.HopsPerS, single.HopsPerS)
	}
	return nil
}
