package bench

import (
	"fmt"
	"io"
)

// Fig5Config parameterizes the CRR-vs-block-size experiment (paper
// Figure 5).
type Fig5Config struct {
	Setup      Setup
	BlockSizes []int    // default {512, 1024, 2048, 4096}
	Methods    []string // default MethodNames
}

// Fig5Result holds CRR per method per block size.
type Fig5Result struct {
	BlockSizes []int
	Methods    []string
	// CRR[method][blockSize]
	CRR map[string]map[int]float64
	// Pages[method][blockSize] is the resulting file size in pages.
	Pages map[string]map[int]int
}

// RunFig5 reproduces Figure 5: the effect of disk block size on CRR for
// each access method, with uniform edge weights.
func RunFig5(cfg Fig5Config) (*Fig5Result, error) {
	if len(cfg.BlockSizes) == 0 {
		cfg.BlockSizes = []int{512, 1024, 2048, 4096}
	}
	if len(cfg.Methods) == 0 {
		cfg.Methods = MethodNames
	}
	g, err := cfg.Setup.Network()
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{
		BlockSizes: cfg.BlockSizes,
		Methods:    cfg.Methods,
		CRR:        map[string]map[int]float64{},
		Pages:      map[string]map[int]int{},
	}
	for _, name := range cfg.Methods {
		res.CRR[name] = map[int]float64{}
		res.Pages[name] = map[int]int{}
		for _, bs := range cfg.BlockSizes {
			m, err := buildMethod(name, g, bs, 64, cfg.Setup.Seed)
			if err != nil {
				return nil, err
			}
			st := StatsOf(m, g)
			res.CRR[name][bs] = st.CRR
			res.Pages[name][bs] = st.Pages
		}
	}
	return res, nil
}

// Print writes the result as a paper-style table.
func (r *Fig5Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 5: effect of disk block size on CRR (uniform weights)")
	fmt.Fprintf(w, "%-10s", "block")
	for _, m := range r.Methods {
		fmt.Fprintf(w, " %10s", m)
	}
	fmt.Fprintln(w)
	for _, bs := range r.BlockSizes {
		fmt.Fprintf(w, "%-10d", bs)
		for _, m := range r.Methods {
			fmt.Fprintf(w, " %10.4f", r.CRR[m][bs])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-10s", "(pages)")
	for _, m := range r.Methods {
		fmt.Fprintf(w, " %10d", r.Pages[m][r.BlockSizes[len(r.BlockSizes)-1]])
	}
	fmt.Fprintln(w)
}
