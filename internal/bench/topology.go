package bench

import (
	"fmt"
	"io"

	"ccam/internal/geom"
	"ccam/internal/graph"
)

// TopologyResult compares clustering quality across network families
// (ablation A6): the grid-like American road map, the ring-and-spoke
// radial city, and a random geometric graph. CCAM's claim is about
// "general networks", so its advantage should not depend on the grid
// topology of the benchmark map.
type TopologyResult struct {
	Topologies []string
	Methods    []string
	// CRR[topology][method]
	CRR map[string]map[string]float64
	// Nodes/Edges per topology, for context.
	Nodes, Edges map[string]int
}

// RunAblationTopology builds each access method over each network
// family (block 1024) and reports CRR.
func RunAblationTopology(setup Setup) (*TopologyResult, error) {
	grid, err := setup.Network()
	if err != nil {
		return nil, err
	}
	radial, err := graph.RadialCity(graph.RadialCityOpts{
		Rings:      18,
		Spokes:     60,
		Radius:     4000,
		Center:     geom.Point{X: 4000, Y: 4000},
		Jitter:     0.2,
		DeleteFrac: 0.12,
		AttrBytes:  24,
		Seed:       setup.Seed,
	})
	if err != nil {
		return nil, err
	}
	geo := graph.RandomGeometric(1100, 320,
		geom.NewRect(geom.Point{X: 0, Y: 0}, geom.Point{X: 8000, Y: 8000}), setup.Seed)

	nets := []struct {
		name string
		g    *graph.Network
	}{
		{"grid-roadmap", grid},
		{"radial-city", radial},
		{"random-geometric", geo},
	}
	res := &TopologyResult{
		Methods: []string{"ccam-s", "dfs-am", "grid-file", "bfs-am"},
		CRR:     map[string]map[string]float64{},
		Nodes:   map[string]int{},
		Edges:   map[string]int{},
	}
	for _, n := range nets {
		res.Topologies = append(res.Topologies, n.name)
		res.Nodes[n.name] = n.g.NumNodes()
		res.Edges[n.name] = n.g.NumEdges()
		res.CRR[n.name] = map[string]float64{}
		for _, name := range res.Methods {
			m, err := buildMethod(name, n.g, 1024, 64, setup.Seed)
			if err != nil {
				return nil, fmt.Errorf("bench: topology %s/%s: %w", n.name, name, err)
			}
			res.CRR[n.name][name] = graph.CRR(n.g, m.File().Placement())
		}
	}
	return res, nil
}

// Print writes the topology comparison.
func (r *TopologyResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Ablation A6: CRR across network topologies (block = 1k)")
	fmt.Fprintf(w, "%-18s %7s %7s", "topology", "nodes", "edges")
	for _, m := range r.Methods {
		fmt.Fprintf(w, " %10s", m)
	}
	fmt.Fprintln(w)
	for _, topo := range r.Topologies {
		fmt.Fprintf(w, "%-18s %7d %7d", topo, r.Nodes[topo], r.Edges[topo])
		for _, m := range r.Methods {
			fmt.Fprintf(w, " %10.4f", r.CRR[topo][m])
		}
		fmt.Fprintln(w)
	}
}
