package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"ccam/internal/graph"
	"ccam/internal/netfile"
	"ccam/internal/partition"
)

// BuildScaleConfig configures the build-scale experiment: how fast does
// CCAM-S clustering get through large networks, and what does the speed
// cost in clustering quality?
type BuildScaleConfig struct {
	Setup Setup
	// Sizes are node-count floors; each is rounded up to the next full
	// lattice (side*side >= n). Default: 4096, 16384, 65536, 262144.
	Sizes []int
	// PageSize is the data block size (default 2048).
	PageSize int
	// Workers bounds the parallel variants' clustering pool
	// (0 = GOMAXPROCS). The serial baseline always runs with one.
	Workers int
}

// BuildScaleRow is one (size, variant) measurement.
type BuildScaleRow struct {
	Nodes   int     `json:"nodes"`
	Edges   int     `json:"edges"`
	Variant string  `json:"variant"`
	BuildMS float64 `json:"build_ms"`
	Pages   int     `json:"pages"`
	CRR     float64 `json:"crr"`
	// Speedup is serial-ratiocut build time over this variant's, at the
	// same size.
	Speedup float64 `json:"speedup_vs_serial"`
}

// BuildScaleResult holds the sweep. Rows are grouped by size in variant
// order: serial-ratiocut, parallel-ratiocut, parallel-multilevel.
type BuildScaleResult struct {
	PageSize int             `json:"page_size"`
	Workers  int             `json:"workers"`
	Seed     int64           `json:"seed"`
	Rows     []BuildScaleRow `json:"rows"`
}

// buildScaleVariants is the fixed comparison: the seed repo's serial
// ratio-cut recursion, the same recursion fanned out over the worker
// pool (identical placement — determinism is part of the contract), and
// the multilevel partitioner on the same pool.
func buildScaleVariants(workers int) []struct {
	name    string
	part    partition.Bipartitioner
	workers int
} {
	return []struct {
		name    string
		part    partition.Bipartitioner
		workers int
	}{
		{"serial-ratiocut", &partition.RatioCut{}, 1},
		{"parallel-ratiocut", &partition.RatioCut{}, workers},
		{"parallel-multilevel", &partition.Multilevel{}, workers},
	}
}

// RunBuildScale times the Fig. 2 clustering at each network size under
// the three variants, reporting wall-clock, page count, CRR and the
// speedup over the serial ratio-cut baseline. All variants share one
// seed, so parallel-ratiocut must reproduce serial-ratiocut's placement
// exactly (equal CRR and pages, differing only in wall-clock).
func RunBuildScale(cfg BuildScaleConfig) (*BuildScaleResult, error) {
	sizes := cfg.Sizes
	if len(sizes) == 0 {
		sizes = []int{4096, 16384, 65536, 262144}
	}
	pageSize := cfg.PageSize
	if pageSize == 0 {
		pageSize = 2048
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &BuildScaleResult{PageSize: pageSize, Workers: workers, Seed: cfg.Setup.Seed}
	for _, n := range sizes {
		opts := cfg.Setup.MapOpts
		side := 1
		for side*side < n {
			side++
		}
		opts.Rows, opts.Cols = side, side
		g, err := graph.RoadMap(opts)
		if err != nil {
			return nil, err
		}
		sizeOf := netfile.StoredSizer(g)
		budget := netfile.PageBudget(pageSize)
		var serialMS float64
		for _, v := range buildScaleVariants(workers) {
			start := time.Now()
			pages, err := partition.ClusterNodesIntoPagesOpts(g, sizeOf, budget, v.part,
				partition.ClusterOptions{Workers: v.workers, Seed: cfg.Setup.Seed})
			if err != nil {
				return nil, fmt.Errorf("bench: build-scale %s at %d nodes: %w", v.name, g.NumNodes(), err)
			}
			ms := float64(time.Since(start)) / float64(time.Millisecond)
			q := partition.EvaluatePages(g, pages, sizeOf, budget)
			row := BuildScaleRow{
				Nodes:   g.NumNodes(),
				Edges:   g.NumEdges(),
				Variant: v.name,
				BuildMS: ms,
				Pages:   q.Pages,
				CRR:     q.CRR,
			}
			if v.name == "serial-ratiocut" {
				serialMS = ms
			}
			if serialMS > 0 && ms > 0 {
				row.Speedup = serialMS / ms
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Print writes the sweep as a plain-text table.
func (r *BuildScaleResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Build scale: clustering wall-clock vs network size (block = %d, workers = %d, seed = %d)\n",
		r.PageSize, r.Workers, r.Seed)
	fmt.Fprintf(w, "%-8s %-8s %-20s %10s %7s %8s %8s\n",
		"nodes", "edges", "variant", "build(ms)", "pages", "CRR", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8d %-8d %-20s %10.1f %7d %8.4f %7.2fx\n",
			row.Nodes, row.Edges, row.Variant, row.BuildMS, row.Pages, row.CRR, row.Speedup)
	}
}

// WriteJSON emits the machine-readable form consumed by CI.
func (r *BuildScaleResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Check enforces the experiment's regression gates: at every size,
// parallel-multilevel CRR must stay within crrTol of serial-ratiocut
// and parallel-ratiocut must reproduce the serial placement exactly; at
// the largest size, parallel-multilevel must be at least minSpeedup
// times faster than the serial baseline.
func (r *BuildScaleResult) Check(minSpeedup, crrTol float64) error {
	bySize := map[int]map[string]BuildScaleRow{}
	sizes := []int{}
	for _, row := range r.Rows {
		m, ok := bySize[row.Nodes]
		if !ok {
			m = map[string]BuildScaleRow{}
			bySize[row.Nodes] = m
			sizes = append(sizes, row.Nodes)
		}
		m[row.Variant] = row
	}
	sort.Ints(sizes)
	if len(sizes) == 0 {
		return fmt.Errorf("bench: build-scale check: no rows")
	}
	for _, n := range sizes {
		m := bySize[n]
		serial, okS := m["serial-ratiocut"]
		par, okP := m["parallel-ratiocut"]
		ml, okM := m["parallel-multilevel"]
		if !okS || !okP || !okM {
			return fmt.Errorf("bench: build-scale check: incomplete variant set at %d nodes", n)
		}
		if par.CRR != serial.CRR || par.Pages != serial.Pages {
			return fmt.Errorf("bench: build-scale check: parallel-ratiocut diverged from serial at %d nodes (CRR %.4f vs %.4f, pages %d vs %d)",
				n, par.CRR, serial.CRR, par.Pages, serial.Pages)
		}
		if d := ml.CRR - serial.CRR; d < -crrTol || d > crrTol {
			return fmt.Errorf("bench: build-scale check: multilevel CRR %.4f departs from serial %.4f by more than %.2f at %d nodes",
				ml.CRR, serial.CRR, crrTol, n)
		}
	}
	largest := bySize[sizes[len(sizes)-1]]
	if ml := largest["parallel-multilevel"]; ml.Speedup < minSpeedup {
		return fmt.Errorf("bench: build-scale check: multilevel speedup %.2fx below %.2fx at %d nodes",
			ml.Speedup, minSpeedup, sizes[len(sizes)-1])
	}
	return nil
}
