// Package bench reproduces every table and figure of the paper's
// experimental evaluation (Section 4) plus the ablations called out in
// DESIGN.md. Each experiment is a pure function from a configuration to
// a result struct; cmd/ccam-bench and the repository's testing.B
// benchmarks print them in the paper's format.
//
// Measurement protocol: the paper reports "number of data pages
// accessed". Search operations count physical data-page reads; update
// operations count reads+writes, matching the paper's
// write-cost-equals-read-cost convention (see internal/costmodel).
// Index pages and the free-space map are memory resident, as the paper
// assumes, and are never charged.
package bench

import (
	"fmt"
	"math/rand"

	"ccam/internal/ccam"
	"ccam/internal/graph"
	"ccam/internal/gridfile"
	"ccam/internal/netfile"
	"ccam/internal/partition"
	"ccam/internal/topo"
)

// MethodNames lists the access methods of the paper's comparison, in
// the paper's order.
var MethodNames = []string{"ccam-s", "ccam-d", "dfs-am", "grid-file", "bfs-am"}

// MethodNamesWithWDFS additionally includes WDFS-AM (used in the route
// evaluation experiment, Fig. 6).
var MethodNamesWithWDFS = []string{"ccam-s", "ccam-d", "dfs-am", "wdfs-am", "grid-file", "bfs-am"}

// NewMethod constructs an unbuilt access method by name.
func NewMethod(name string, pageSize, poolPages int, seed int64) (netfile.AccessMethod, error) {
	switch name {
	case "ccam-s":
		return ccam.New(ccam.Config{PageSize: pageSize, PoolPages: poolPages, Seed: seed})
	case "ccam-d":
		return ccam.New(ccam.Config{PageSize: pageSize, PoolPages: poolPages, Seed: seed, Dynamic: true})
	case "dfs-am":
		return topo.New(topo.Config{Kind: topo.DFS, PageSize: pageSize, PoolPages: poolPages, Seed: seed})
	case "bfs-am":
		return topo.New(topo.Config{Kind: topo.BFS, PageSize: pageSize, PoolPages: poolPages, Seed: seed})
	case "wdfs-am":
		return topo.New(topo.Config{Kind: topo.WDFS, PageSize: pageSize, PoolPages: poolPages, Seed: seed})
	case "hilbert-am":
		return topo.New(topo.Config{Kind: topo.Hilbert, PageSize: pageSize, PoolPages: poolPages, Seed: seed})
	case "zcurve-am":
		return topo.New(topo.Config{Kind: topo.ZCurve, PageSize: pageSize, PoolPages: poolPages, Seed: seed})
	case "grid-file":
		return gridfile.New(gridfile.Config{PageSize: pageSize, PoolPages: poolPages})
	default:
		return nil, fmt.Errorf("bench: unknown access method %q", name)
	}
}

// Setup configures the common workload.
type Setup struct {
	// MapOpts generates the benchmark network (default: the
	// Minneapolis-scale synthetic road map).
	MapOpts graph.RoadMapOpts
	// Seed drives workload randomness (sampling, route walks).
	Seed int64
}

// DefaultSetup returns the paper-scale configuration.
func DefaultSetup() Setup {
	return Setup{MapOpts: graph.MinneapolisLikeOpts(), Seed: 42}
}

// Network builds the benchmark road map.
func (s Setup) Network() (*graph.Network, error) {
	return graph.RoadMap(s.MapOpts)
}

// buildMethod constructs and builds one named method over g.
func buildMethod(name string, g *graph.Network, pageSize, poolPages int, seed int64) (netfile.AccessMethod, error) {
	m, err := NewMethod(name, pageSize, poolPages, seed)
	if err != nil {
		return nil, err
	}
	if err := m.Build(g); err != nil {
		return nil, fmt.Errorf("bench: build %s: %w", name, err)
	}
	return m, nil
}

// NetworkStats captures the model parameters of a built file.
type NetworkStats struct {
	Nodes, Edges int
	AvgA         float64 // |A|
	Lambda       float64 // λ
	Gamma        float64 // γ (records per data page)
	CRR          float64 // α
	WCRR         float64
	Pages        int
}

// StatsOf measures the cost-model parameters of method m over g.
func StatsOf(m netfile.AccessMethod, g *graph.Network) NetworkStats {
	f := m.File()
	p := f.Placement()
	st := NetworkStats{
		Nodes:  g.NumNodes(),
		Edges:  g.NumEdges(),
		AvgA:   g.AvgSuccessors(),
		Lambda: g.AvgNeighbors(),
		CRR:    graph.CRR(g, p),
		WCRR:   graph.WCRR(g, p),
		Pages:  f.NumPages(),
	}
	if st.Pages > 0 {
		st.Gamma = float64(st.Nodes) / float64(st.Pages)
	}
	return st
}

// sampleNodes returns a random sample of fraction frac of g's nodes.
func sampleNodes(g *graph.Network, frac float64, rng *rand.Rand) []graph.NodeID {
	ids := g.NodeIDs()
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	n := int(float64(len(ids)) * frac)
	if n < 1 {
		n = 1
	}
	return ids[:n]
}

// newCCAMWithMultilevel builds a CCAM-S instance using the multilevel
// partitioner and the full worker pool, which scales far better than
// ratio-cut restarts on large maps.
func newCCAMWithMultilevel(pageSize int, seed int64) (netfile.AccessMethod, error) {
	return ccam.New(ccam.Config{
		PageSize:    pageSize,
		PoolPages:   64,
		Seed:        seed,
		Partitioner: &partition.Multilevel{},
	})
}
