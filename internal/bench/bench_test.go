package bench

import (
	"bytes"
	"testing"

	"ccam/internal/graph"
	"ccam/internal/netfile"
)

// smallSetup shrinks the map so experiment tests run fast while
// preserving the road-map character.
func smallSetup() Setup {
	opts := graph.MinneapolisLikeOpts()
	opts.Rows, opts.Cols = 16, 16
	return Setup{MapOpts: opts, Seed: 7}
}

func TestNewMethodNames(t *testing.T) {
	for _, name := range MethodNamesWithWDFS {
		m, err := NewMethod(name, 1024, 8, 1)
		if err != nil {
			t.Fatalf("NewMethod(%s): %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("Name = %q, want %q", m.Name(), name)
		}
	}
	if _, err := NewMethod("nope", 1024, 8, 1); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestFig5ShapeMatchesPaper(t *testing.T) {
	res, err := RunFig5(Fig5Config{Setup: smallSetup(), BlockSizes: []int{512, 1024, 2048}})
	if err != nil {
		t.Fatal(err)
	}
	// CRR increases with block size for every method.
	for _, m := range res.Methods {
		prev := -1.0
		for _, bs := range res.BlockSizes {
			crr := res.CRR[m][bs]
			if crr < prev-0.05 {
				t.Errorf("%s: CRR decreased with block size: %.4f @%d after %.4f", m, crr, bs, prev)
			}
			prev = crr
		}
	}
	// CCAM-S tops every block size; BFS-AM is worst.
	for _, bs := range res.BlockSizes {
		best := res.CRR["ccam-s"][bs]
		for _, m := range res.Methods {
			if m != "ccam-s" && res.CRR[m][bs] > best+0.02 {
				t.Errorf("block %d: %s CRR %.4f beats CCAM-S %.4f", bs, m, res.CRR[m][bs], best)
			}
		}
		if res.CRR["bfs-am"][bs] > res.CRR["dfs-am"][bs] {
			t.Errorf("block %d: BFS-AM should trail DFS-AM", bs)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print output")
	}
}

func TestTable5ShapeMatchesPaper(t *testing.T) {
	res, err := RunTable5(Table5Config{Setup: smallSetup()})
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]Table5Row{}
	for _, r := range res.Rows {
		rows[r.Method] = r
	}
	ccam, bfs := rows["ccam-s"], rows["bfs-am"]
	// CCAM wins the CRR-driven operations; BFS-AM loses them.
	if ccam.GetSuccsActual >= bfs.GetSuccsActual {
		t.Errorf("Get-successors: CCAM %.3f should beat BFS %.3f", ccam.GetSuccsActual, bfs.GetSuccsActual)
	}
	if ccam.GetASuccActual >= bfs.GetASuccActual {
		t.Errorf("Get-A-successor: CCAM %.3f should beat BFS %.3f", ccam.GetASuccActual, bfs.GetASuccActual)
	}
	if ccam.DeleteActual >= bfs.DeleteActual {
		t.Errorf("Delete: CCAM %.3f should beat BFS %.3f", ccam.DeleteActual, bfs.DeleteActual)
	}
	// Actual tracks predicted within a reasonable band for the search ops.
	for name, r := range rows {
		if r.GetASuccActual > r.GetASuccPredicted*1.3+0.05 {
			t.Errorf("%s: Get-A-successor actual %.3f far above predicted %.3f", name, r.GetASuccActual, r.GetASuccPredicted)
		}
		if r.GetSuccsActual > r.GetSuccsPredicted*1.3+0.05 {
			t.Errorf("%s: Get-successors actual %.3f far above predicted %.3f", name, r.GetSuccsActual, r.GetSuccsPredicted)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print output")
	}
}

func TestFig6ShapeMatchesPaper(t *testing.T) {
	res, err := RunFig6(Fig6Config{Setup: smallSetup(), RoutesPerSet: 30})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Methods {
		series := res.PagesPerRoute[m]
		// I/O grows with route length.
		for i := 1; i < len(series); i++ {
			if series[i] < series[i-1]-0.5 {
				t.Errorf("%s: route I/O not increasing: %v", m, series)
			}
		}
	}
	// CCAM variants beat every other method at the longest length.
	last := len(res.RouteLengths) - 1
	ccamBest := res.PagesPerRoute["ccam-s"][last]
	for _, m := range res.Methods {
		if m == "ccam-s" || m == "ccam-d" {
			continue
		}
		if res.PagesPerRoute[m][last] < ccamBest-0.5 {
			t.Errorf("%s (%.2f) beats ccam-s (%.2f) at L=%d", m, res.PagesPerRoute[m][last], ccamBest, res.RouteLengths[last])
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print output")
	}
}

func TestFig7ShapeMatchesPaper(t *testing.T) {
	res, err := RunFig7(Fig7Config{Setup: smallSetup(), Points: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d", len(res.Series))
	}
	byPolicy := map[netfile.Policy]Fig7Series{}
	for _, s := range res.Series {
		byPolicy[s.Policy] = s
	}
	lastIO := func(p netfile.Policy) float64 {
		s := byPolicy[p]
		return s.AvgIO[len(s.AvgIO)-1]
	}
	lastCRR := func(p netfile.Policy) float64 {
		s := byPolicy[p]
		return s.CRR[len(s.CRR)-1]
	}
	// Higher order costs much more I/O than first/second order.
	if lastIO(netfile.HigherOrder) <= lastIO(netfile.SecondOrder)*1.3 {
		t.Errorf("higher-order I/O %.2f not clearly above second-order %.2f",
			lastIO(netfile.HigherOrder), lastIO(netfile.SecondOrder))
	}
	// First-order ends with the lowest CRR of the three.
	if lastCRR(netfile.FirstOrder) > lastCRR(netfile.SecondOrder)+0.03 {
		t.Errorf("first-order CRR %.4f above second-order %.4f",
			lastCRR(netfile.FirstOrder), lastCRR(netfile.SecondOrder))
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print output")
	}
}

func TestAblationPartitioners(t *testing.T) {
	res, err := RunAblationPartitioners(smallSetup(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	seen := map[string]bool{}
	for _, row := range res.Rows {
		seen[row.Name] = true
		if row.CRR <= 0.3 || row.CRR > 1 {
			t.Errorf("%s: CRR %.4f out of range", row.Name, row.CRR)
		}
	}
	if !seen["multilevel"] {
		t.Error("multilevel partitioner missing from A1")
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print output")
	}
}

func TestAblationBufferSweep(t *testing.T) {
	res, err := RunAblationBufferSweep(smallSetup())
	if err != nil {
		t.Fatal(err)
	}
	// More buffers never cost more I/O.
	for _, m := range res.Methods {
		s := res.PagesPerRoute[m]
		for i := 1; i < len(s); i++ {
			if s[i] > s[i-1]+0.25 {
				t.Errorf("%s: I/O grew with pool size: %v", m, s)
			}
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print output")
	}
}

func TestAblationScaleSmall(t *testing.T) {
	res, err := RunAblationScale(smallSetup(), []int{64, 256})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Methods {
		for i, crr := range res.CRR[m] {
			if crr <= 0 || crr > 1 {
				t.Errorf("%s @%d nodes: CRR %.4f", m, res.Sizes[i], crr)
			}
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print output")
	}
}

func TestSearchPaths(t *testing.T) {
	res, err := RunSearchPaths(SearchPathsConfig{Setup: smallSetup(), Pairs: 10})
	if err != nil {
		t.Fatal(err)
	}
	// A* reads at most as much as Dijkstra; CCAM reads less than BFS.
	for _, m := range res.Methods {
		if res.AStarReads[m] > res.DijkstraReads[m]+0.5 {
			t.Errorf("%s: A* (%.1f) above Dijkstra (%.1f)", m, res.AStarReads[m], res.DijkstraReads[m])
		}
	}
	if res.DijkstraReads["ccam-s"] >= res.DijkstraReads["bfs-am"] {
		t.Errorf("ccam-s search I/O %.1f should beat bfs-am %.1f",
			res.DijkstraReads["ccam-s"], res.DijkstraReads["bfs-am"])
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print output")
	}
}

func TestFig7WithLazyPolicy(t *testing.T) {
	res, err := RunFig7(Fig7Config{
		Setup:    smallSetup(),
		Points:   3,
		Policies: []netfile.Policy{netfile.FirstOrder, netfile.Lazy, netfile.HigherOrder},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d", len(res.Series))
	}
	byPolicy := map[netfile.Policy]Fig7Series{}
	for _, s := range res.Series {
		byPolicy[s.Policy] = s
	}
	last := func(p netfile.Policy) float64 {
		s := byPolicy[p]
		return s.AvgIO[len(s.AvgIO)-1]
	}
	if last(netfile.Lazy) >= last(netfile.HigherOrder) {
		t.Errorf("lazy I/O %.2f should stay below higher-order %.2f",
			last(netfile.Lazy), last(netfile.HigherOrder))
	}
}

func TestAblationTopology(t *testing.T) {
	res, err := RunAblationTopology(smallSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Topologies) != 3 {
		t.Fatalf("topologies = %v", res.Topologies)
	}
	// CCAM wins (or ties) on every topology; BFS is always worst.
	for _, topo := range res.Topologies {
		ccam := res.CRR[topo]["ccam-s"]
		for _, m := range res.Methods {
			if m == "ccam-s" {
				continue
			}
			if res.CRR[topo][m] > ccam+0.03 {
				t.Errorf("%s: %s CRR %.4f beats ccam-s %.4f", topo, m, res.CRR[topo][m], ccam)
			}
		}
		if res.CRR[topo]["bfs-am"] > res.CRR[topo]["ccam-s"] {
			t.Errorf("%s: bfs beats ccam", topo)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print output")
	}
}

func TestMixedWorkload(t *testing.T) {
	res, err := RunMixedWorkload(MixedConfig{Setup: smallSetup(), Ops: 120, UpdateFracs: []float64{0, 0.4}})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Methods {
		for i := range res.UpdateFracs {
			if v := res.PagesPerOp[m][i]; v <= 0 {
				t.Errorf("%s: implausible cost %f", m, v)
			}
			if crr := res.FinalCRR[m][i]; crr <= 0 || crr > 1 {
				t.Errorf("%s: final CRR %f", m, crr)
			}
		}
	}
	// CCAM stays the cheapest at every update fraction (single-page
	// travel-time refreshes can lower the average, so the per-method
	// series need not be monotone — only the ordering is asserted).
	for i := range res.UpdateFracs {
		if res.PagesPerOp["ccam-s"][i] >= res.PagesPerOp["grid-file"][i] {
			t.Errorf("at frac %.2f: ccam-s %v should beat grid-file %v",
				res.UpdateFracs[i], res.PagesPerOp["ccam-s"][i], res.PagesPerOp["grid-file"][i])
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print output")
	}
}

// TestGoldenDeterminism pins the paper-scale headline numbers: the
// experiments are seeded, so these values must reproduce exactly across
// runs (a drift means an unintended behaviour change).
func TestGoldenDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale build")
	}
	setup := DefaultSetup()
	g, err := setup.Network()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1077 || g.NumEdges() != 3045 {
		t.Fatalf("benchmark map drifted: %d nodes %d edges (want 1077/3045)", g.NumNodes(), g.NumEdges())
	}
	m, err := buildMethod("ccam-s", g, 1024, 64, setup.Seed)
	if err != nil {
		t.Fatal(err)
	}
	crr := StatsOf(m, g).CRR
	if crr < 0.70 || crr > 0.78 {
		t.Fatalf("paper-scale CCAM-S CRR drifted to %.4f (expected ~0.739)", crr)
	}
}

func TestAblationSpatialOrder(t *testing.T) {
	res, err := RunAblationSpatialOrder(smallSetup())
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range res.BlockSizes {
		// CCAM beats every proximity ordering at every block size.
		for _, m := range res.Methods {
			if m == "ccam-s" {
				continue
			}
			if res.CRR[m][bs] > res.CRR["ccam-s"][bs]+0.02 {
				t.Errorf("block %d: %s %.4f beats ccam-s %.4f", bs, m, res.CRR[m][bs], res.CRR["ccam-s"][bs])
			}
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print output")
	}
}
