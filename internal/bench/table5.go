package bench

import (
	"fmt"
	"io"
	"math/rand"

	"ccam/internal/costmodel"
	"ccam/internal/graph"
	"ccam/internal/netfile"
)

// Table5Config parameterizes the network-operation cost experiment
// (paper Table 5).
type Table5Config struct {
	Setup      Setup
	BlockSize  int      // default 1024, as in the paper
	SampleFrac float64  // default 0.5 ("randomly chosen 50% of nodes")
	Methods    []string // default {ccam-s, dfs-am, grid-file, bfs-am}
}

// Table5Row is one method's measurements: actual and model-predicted
// data-page accesses per operation.
type Table5Row struct {
	Method string
	Stats  NetworkStats

	GetSuccsActual, GetSuccsPredicted float64
	GetASuccActual, GetASuccPredicted float64
	DeleteActual, DeletePredicted     float64
	InsertActual                      float64
}

// Table5Result is the full table.
type Table5Result struct {
	Rows []Table5Row
}

// RunTable5 reproduces Table 5: average data-page accesses of
// Get-successors(), Get-A-successor(), Delete() and Insert() on a
// random 50% node sample, with the cost-model predictions alongside.
// Page underflows/overflows are bypassed during Delete measurement (the
// paper ignores them "to filter out the effect of reorganization
// policies, which are studied separately").
func RunTable5(cfg Table5Config) (*Table5Result, error) {
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 1024
	}
	if cfg.SampleFrac == 0 {
		cfg.SampleFrac = 0.5
	}
	if len(cfg.Methods) == 0 {
		cfg.Methods = []string{"ccam-s", "dfs-am", "grid-file", "bfs-am"}
	}
	g, err := cfg.Setup.Network()
	if err != nil {
		return nil, err
	}
	res := &Table5Result{}
	for _, name := range cfg.Methods {
		row, err := runTable5Method(name, g, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: table5 %s: %w", name, err)
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

func runTable5Method(name string, g *graph.Network, cfg Table5Config) (*Table5Row, error) {
	m, err := buildMethod(name, g, cfg.BlockSize, 64, cfg.Setup.Seed)
	if err != nil {
		return nil, err
	}
	f := m.File()
	st := StatsOf(m, g)
	params := costmodel.Params{Alpha: st.CRR, AvgA: st.AvgA, Lambda: st.Lambda, Gamma: st.Gamma}
	row := &Table5Row{
		Method:            m.Name(),
		Stats:             st,
		GetSuccsPredicted: costmodel.GetSuccessors(params),
		GetASuccPredicted: costmodel.GetASuccessor(params),
		DeletePredicted:   costmodel.DeleteTotal(params, costmodel.SecondOrder),
	}
	rng := rand.New(rand.NewSource(cfg.Setup.Seed + 1))
	sample := sampleNodes(g, cfg.SampleFrac, rng)

	// --- Get-successors: page of x assumed in memory.
	var acc int64
	for _, x := range sample {
		if err := f.ResetIO(); err != nil {
			return nil, err
		}
		if _, err := f.Find(x); err != nil {
			return nil, err
		}
		base := f.DataIO().Reads
		if _, err := f.GetSuccessors(x); err != nil {
			return nil, err
		}
		acc += f.DataIO().Reads - base
	}
	row.GetSuccsActual = float64(acc) / float64(len(sample))

	// --- Get-A-successor: one random successor per sampled node.
	acc = 0
	counted := 0
	for _, x := range sample {
		succs := g.Successors(x)
		if len(succs) == 0 {
			continue
		}
		target := succs[rng.Intn(len(succs))]
		if err := f.ResetIO(); err != nil {
			return nil, err
		}
		rec, err := f.Find(x)
		if err != nil {
			return nil, err
		}
		base := f.DataIO().Reads
		if _, err := f.GetASuccessor(rec, target); err != nil {
			return nil, err
		}
		acc += f.DataIO().Reads - base
		counted++
	}
	if counted > 0 {
		row.GetASuccActual = float64(acc) / float64(counted)
	}

	// --- Delete: uniform protocol on the shared file (reorganization
	// and underflow handling bypassed); cost = reads + writes. The
	// node is silently restored to its original page afterwards.
	acc = 0
	for _, x := range sample {
		op, err := netfile.InsertOpFromNode(g, x)
		if err != nil {
			return nil, err
		}
		pid, err := f.PageOf(x)
		if err != nil {
			return nil, err
		}
		if err := f.ResetIO(); err != nil {
			return nil, err
		}
		rec, err := f.DeleteRecord(x)
		if err != nil {
			return nil, err
		}
		if err := f.RemoveNeighborLinks(rec); err != nil {
			return nil, err
		}
		if err := f.Flush(); err != nil {
			return nil, err
		}
		io := f.DataIO()
		acc += io.Reads + io.Writes
		// Restore (uncounted).
		if err := f.InsertRecordAt(rec, pid); err != nil {
			return nil, fmt.Errorf("restore %d: %w", x, err)
		}
		if err := f.UpdateNeighborLinks(op, nil); err != nil {
			return nil, fmt.Errorf("restore links %d: %w", x, err)
		}
	}
	row.DeleteActual = float64(acc) / float64(len(sample))

	// --- Insert: measured with a hold-out protocol. The paper's insert
	// observation ("the spatial proximity of the neighbors of the new
	// node being inserted helps the Grid file") concerns genuinely new
	// nodes, whose neighbors were never co-clustered around them.
	// Deleting and re-inserting the same node would leave its neighbors
	// pre-clustered and mask the effect, so instead the file is rebuilt
	// without a random 10% of the nodes and their insertion is
	// measured.
	insertCost, err := measureHoldOutInsert(name, g, cfg, rng)
	if err != nil {
		return nil, err
	}
	row.InsertActual = insertCost
	return row, nil
}

// measureHoldOutInsert builds the method on the network minus a random
// 10% of nodes and returns the average reads+writes of inserting the
// held-out nodes (first-order policy).
func measureHoldOutInsert(name string, g *graph.Network, cfg Table5Config, rng *rand.Rand) (float64, error) {
	ids := g.NodeIDs()
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	nHold := len(ids) / 10
	if nHold < 1 {
		nHold = 1
	}
	held := ids[:nHold]
	base := g.Clone()
	for _, id := range held {
		base.RemoveNode(id)
	}
	m, err := buildMethod(name, base, cfg.BlockSize, 64, cfg.Setup.Seed)
	if err != nil {
		return 0, err
	}
	f := m.File()
	cur := base.Clone()
	var acc int64
	for _, x := range held {
		op, err := restrictedInsertOp(g, cur, x)
		if err != nil {
			return 0, err
		}
		if err := f.ResetIO(); err != nil {
			return 0, err
		}
		if err := m.Insert(op, netfile.FirstOrder); err != nil {
			return 0, fmt.Errorf("hold-out insert %d: %w", x, err)
		}
		if err := f.Flush(); err != nil {
			return 0, err
		}
		io := f.DataIO()
		acc += io.Reads + io.Writes
		if err := mirrorInsertOp(cur, op); err != nil {
			return 0, err
		}
	}
	return float64(acc) / float64(len(held)), nil
}

// Print writes the result in the paper's Table 5 layout.
func (r *Table5Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 5: I/O cost for network operations (block = 1k, 50% node sample)")
	fmt.Fprintf(w, "%-11s %9s %9s | %9s %9s | %9s %9s | %9s | %8s\n",
		"method", "GetSuccs", "pred", "GetASucc", "pred", "Delete", "pred", "Insert", "CRR")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-11s %9.3f %9.3f | %9.3f %9.3f | %9.3f %9.3f | %9.3f | %8.4f\n",
			row.Method,
			row.GetSuccsActual, row.GetSuccsPredicted,
			row.GetASuccActual, row.GetASuccPredicted,
			row.DeleteActual, row.DeletePredicted,
			row.InsertActual, row.Stats.CRR)
	}
	if len(r.Rows) > 0 {
		st := r.Rows[0].Stats
		fmt.Fprintf(w, "|A| = %.3f  lambda = %.2f  gamma = %.2f (CCAM file)\n", st.AvgA, st.Lambda, st.Gamma)
	}
}
