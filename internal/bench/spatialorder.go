package bench

import (
	"fmt"
	"io"

	"ccam/internal/graph"
)

// SpatialOrderResult compares proximity-based file organizations
// (ablation A8): the space-filling-curve orderings (Hilbert-AM,
// ZCurve-AM), the Grid File, and CCAM — the question of the paper's
// companion study [23], "Can Proximity-Based Access Methods Efficiently
// Support Network Computations?".
type SpatialOrderResult struct {
	BlockSizes []int
	Methods    []string
	// CRR[method][blockSize]
	CRR map[string]map[int]float64
}

// RunAblationSpatialOrder measures the CRR of proximity organizations
// across block sizes, with CCAM-S and DFS-AM for reference.
func RunAblationSpatialOrder(setup Setup) (*SpatialOrderResult, error) {
	g, err := setup.Network()
	if err != nil {
		return nil, err
	}
	res := &SpatialOrderResult{
		BlockSizes: []int{512, 1024, 2048, 4096},
		Methods:    []string{"ccam-s", "hilbert-am", "zcurve-am", "grid-file", "dfs-am"},
		CRR:        map[string]map[int]float64{},
	}
	for _, name := range res.Methods {
		res.CRR[name] = map[int]float64{}
		for _, bs := range res.BlockSizes {
			m, err := buildMethod(name, g, bs, 64, setup.Seed)
			if err != nil {
				return nil, fmt.Errorf("bench: spatial order %s@%d: %w", name, bs, err)
			}
			res.CRR[name][bs] = graph.CRR(g, m.File().Placement())
		}
	}
	return res, nil
}

// Print writes the comparison.
func (r *SpatialOrderResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Ablation A8: proximity-based organizations vs connectivity clustering (CRR)")
	fmt.Fprintf(w, "%-10s", "block")
	for _, m := range r.Methods {
		fmt.Fprintf(w, " %11s", m)
	}
	fmt.Fprintln(w)
	for _, bs := range r.BlockSizes {
		fmt.Fprintf(w, "%-10d", bs)
		for _, m := range r.Methods {
			fmt.Fprintf(w, " %11.4f", r.CRR[m][bs])
		}
		fmt.Fprintln(w)
	}
}
