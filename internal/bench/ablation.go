package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"ccam/internal/graph"
	"ccam/internal/netfile"
	"ccam/internal/partition"
)

// AblationPartitionerResult compares the partitioning heuristics CCAM
// can be based on ("other graph partitioning methods can also be used
// as the basis of our scheme"), plus the optional greedy M-way
// refinement pass.
type AblationPartitionerResult struct {
	Rows []AblationPartitionerRow
}

// AblationPartitionerRow is one heuristic's clustering quality.
type AblationPartitionerRow struct {
	Name      string
	CRR       float64
	Pages     int
	AvgFill   float64
	BuildTime time.Duration
}

// RunAblationPartitioners clusters the benchmark map with each
// heuristic (KL, FM, ratio-cut) and with ratio-cut + M-way refinement,
// at the given block size (default 1024).
func RunAblationPartitioners(setup Setup, blockSize int) (*AblationPartitionerResult, error) {
	if blockSize == 0 {
		blockSize = 1024
	}
	g, err := setup.Network()
	if err != nil {
		return nil, err
	}
	sizeOf := netfile.StoredSizer(g)
	budget := netfile.PageBudget(blockSize)

	type cand struct {
		name     string
		part     partition.Bipartitioner
		mway     bool
		coalesce bool
	}
	cands := []cand{
		{"kernighan-lin", &partition.KL{}, false, false},
		{"fm", &partition.FM{}, false, false},
		{"ratio-cut", &partition.RatioCut{}, false, false},
		{"multilevel", &partition.Multilevel{}, false, false},
		{"ratio-cut+mway", &partition.RatioCut{}, true, false},
		{"ratio-cut+coalesce", &partition.RatioCut{}, false, true},
		{"ratio-cut+both", &partition.RatioCut{}, true, true},
	}
	res := &AblationPartitionerResult{}
	for _, c := range cands {
		rng := rand.New(rand.NewSource(setup.Seed))
		start := time.Now()
		pages, err := partition.ClusterNodesIntoPages(g, sizeOf, budget, c.part, rng)
		if err != nil {
			return nil, fmt.Errorf("bench: ablation %s: %w", c.name, err)
		}
		if c.coalesce {
			pages, _ = partition.CoalescePages(g, pages, sizeOf, budget, 10)
		}
		if c.mway {
			pages, _ = partition.MWayRefine(g, pages, sizeOf, budget, 10)
		}
		elapsed := time.Since(start)
		q := partition.EvaluatePages(g, pages, sizeOf, budget)
		res.Rows = append(res.Rows, AblationPartitionerRow{
			Name: c.name, CRR: q.CRR, Pages: q.Pages, AvgFill: q.AvgFill, BuildTime: elapsed,
		})
	}
	return res, nil
}

// Print writes the partitioner comparison.
func (r *AblationPartitionerResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Ablation A1: partitioning heuristic vs clustering quality (block = 1k)")
	fmt.Fprintf(w, "%-16s %8s %7s %8s %12s\n", "partitioner", "CRR", "pages", "avgFill", "build")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s %8.4f %7d %8.2f %12s\n",
			row.Name, row.CRR, row.Pages, row.AvgFill, row.BuildTime.Round(time.Millisecond))
	}
}

// AblationBufferResult sweeps the buffer pool size for route
// evaluation (the paper fixes it at one page; this quantifies what
// larger pools buy).
type AblationBufferResult struct {
	PoolSizes []int
	// PagesPerRoute[method][i] corresponds to PoolSizes[i].
	PagesPerRoute map[string][]float64
	Methods       []string
	RouteLength   int
}

// RunAblationBufferSweep measures route-evaluation I/O as the buffer
// pool grows from 1 to 16 pages (block 2048, route length 40).
func RunAblationBufferSweep(setup Setup) (*AblationBufferResult, error) {
	g, err := setup.Network()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(setup.Seed + 9))
	routes, err := graph.RandomWalkRoutes(g, 100, 40, rng)
	if err != nil {
		return nil, err
	}
	if _, err := graph.ApplyRouteWeights(g, routes); err != nil {
		return nil, err
	}
	res := &AblationBufferResult{
		PoolSizes:     []int{1, 2, 4, 8, 16},
		PagesPerRoute: map[string][]float64{},
		Methods:       []string{"ccam-s", "dfs-am", "grid-file"},
		RouteLength:   40,
	}
	for _, name := range res.Methods {
		series := make([]float64, len(res.PoolSizes))
		for i, pool := range res.PoolSizes {
			m, err := buildMethod(name, g, 2048, pool, setup.Seed)
			if err != nil {
				return nil, err
			}
			f := m.File()
			var reads int64
			for _, r := range routes {
				if err := f.ResetIO(); err != nil {
					return nil, err
				}
				if _, err := f.EvaluateRoute(r); err != nil {
					return nil, err
				}
				reads += f.DataIO().Reads
			}
			series[i] = float64(reads) / float64(len(routes))
		}
		res.PagesPerRoute[name] = series
	}
	return res, nil
}

// Print writes the buffer sweep.
func (r *AblationBufferResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Ablation A2: buffer pool size vs route evaluation I/O (block = 2k, L = %d)\n", r.RouteLength)
	fmt.Fprintf(w, "%-11s", "method")
	for _, p := range r.PoolSizes {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("pool=%d", p))
	}
	fmt.Fprintln(w)
	for _, m := range r.Methods {
		fmt.Fprintf(w, "%-11s", m)
		for i := range r.PoolSizes {
			fmt.Fprintf(w, " %8.2f", r.PagesPerRoute[m][i])
		}
		fmt.Fprintln(w)
	}
}

// AblationScaleResult sweeps the network size.
type AblationScaleResult struct {
	Sizes []int // node counts
	// CRR[method][i] corresponds to Sizes[i].
	CRR     map[string][]float64
	Methods []string
	// BuildTime[i] is the CCAM-S clustering time at Sizes[i].
	BuildTime []time.Duration
}

// RunAblationScale measures CRR and CCAM build time as the road map
// grows (block 1024, multilevel partitioner for the large sizes to keep
// CPU time bounded).
func RunAblationScale(setup Setup, sizes []int) (*AblationScaleResult, error) {
	if len(sizes) == 0 {
		sizes = []int{256, 1024, 4096, 16384}
	}
	res := &AblationScaleResult{
		Sizes:   sizes,
		CRR:     map[string][]float64{},
		Methods: []string{"ccam-s", "dfs-am", "bfs-am"},
	}
	for _, name := range res.Methods {
		res.CRR[name] = make([]float64, len(sizes))
	}
	for i, n := range sizes {
		opts := setup.MapOpts
		side := 1
		for side*side < n {
			side++
		}
		opts.Rows, opts.Cols = side, side
		g, err := graph.RoadMap(opts)
		if err != nil {
			return nil, err
		}
		for _, name := range res.Methods {
			start := time.Now()
			var m netfile.AccessMethod
			if name == "ccam-s" {
				// Multilevel keeps the largest sweeps tractable.
				cm, err := newCCAMWithMultilevel(1024, setup.Seed)
				if err != nil {
					return nil, err
				}
				if err := cm.Build(g); err != nil {
					return nil, err
				}
				m = cm
				res.BuildTime = append(res.BuildTime, time.Since(start))
			} else {
				m, err = buildMethod(name, g, 1024, 64, setup.Seed)
				if err != nil {
					return nil, err
				}
			}
			res.CRR[name][i] = graph.CRR(g, m.File().Placement())
		}
	}
	return res, nil
}

// Print writes the scale sweep.
func (r *AblationScaleResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Ablation A3: network size vs CRR (block = 1k; ccam-s uses the multilevel partitioner)")
	fmt.Fprintf(w, "%-10s", "nodes")
	for _, m := range r.Methods {
		fmt.Fprintf(w, " %10s", m)
	}
	fmt.Fprintf(w, " %12s\n", "ccam build")
	for i, n := range r.Sizes {
		fmt.Fprintf(w, "%-10d", n)
		for _, m := range r.Methods {
			fmt.Fprintf(w, " %10.4f", r.CRR[m][i])
		}
		if i < len(r.BuildTime) {
			fmt.Fprintf(w, " %12s", r.BuildTime[i].Round(time.Millisecond))
		}
		fmt.Fprintln(w)
	}
}
