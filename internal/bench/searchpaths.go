package bench

import (
	"errors"
	"fmt"
	"io"
	"math/rand"

	"ccam/internal/graph"
	"ccam/internal/query"
)

// SearchPathsConfig parameterizes the graph-search experiment (ablation
// A4): shortest-path computations over each access method, in the
// spirit of the path-computation benchmarks the paper cites ([23]:
// "Can Proximity-Based Access Methods Efficiently Support Network
// Computations?").
type SearchPathsConfig struct {
	Setup Setup
	// BlockSize defaults to 2048.
	BlockSize int
	// Pairs is the number of random source/destination pairs
	// (default 50).
	Pairs int
	// PoolPages defaults to 8 — a small but realistic search buffer.
	PoolPages int
	// Methods defaults to MethodNames.
	Methods []string
}

// SearchPathsResult holds per-method search I/O.
type SearchPathsResult struct {
	Methods []string
	// DijkstraReads[m] is the mean data-page reads per Dijkstra query.
	DijkstraReads map[string]float64
	// AStarReads[m] is the mean data-page reads per A* query.
	AStarReads map[string]float64
	// Expanded is the mean node expansions (identical across methods;
	// reported once for context).
	DijkstraExpanded, AStarExpanded float64
}

// RunSearchPaths measures the data-page I/O of shortest-path queries —
// the aggregate computation whose Get-successors cost the paper's
// design targets — over every access method.
func RunSearchPaths(cfg SearchPathsConfig) (*SearchPathsResult, error) {
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 2048
	}
	if cfg.Pairs == 0 {
		cfg.Pairs = 50
	}
	if cfg.PoolPages == 0 {
		cfg.PoolPages = 8
	}
	if len(cfg.Methods) == 0 {
		cfg.Methods = MethodNames
	}
	g, err := cfg.Setup.Network()
	if err != nil {
		return nil, err
	}
	ids := g.NodeIDs()
	rng := rand.New(rand.NewSource(cfg.Setup.Seed + 13))
	type pair struct{ src, dst graph.NodeID }
	pairs := make([]pair, cfg.Pairs)
	for i := range pairs {
		pairs[i] = pair{ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]}
	}

	res := &SearchPathsResult{
		Methods:       cfg.Methods,
		DijkstraReads: map[string]float64{},
		AStarReads:    map[string]float64{},
	}
	for _, name := range cfg.Methods {
		m, err := buildMethod(name, g, cfg.BlockSize, cfg.PoolPages, cfg.Setup.Seed)
		if err != nil {
			return nil, err
		}
		f := m.File()
		var dReads, aReads int64
		var dExp, aExp int
		for _, p := range pairs {
			if err := f.ResetIO(); err != nil {
				return nil, err
			}
			dp, err := query.Dijkstra(f, p.src, p.dst)
			if err != nil && !errors.Is(err, query.ErrNoPath) {
				return nil, fmt.Errorf("bench: search %s dijkstra: %w", name, err)
			}
			dReads += f.DataIO().Reads
			dExp += dp.Expanded

			if err := f.ResetIO(); err != nil {
				return nil, err
			}
			ap, err := query.AStar(f, p.src, p.dst, 0.8)
			if err != nil && !errors.Is(err, query.ErrNoPath) {
				return nil, fmt.Errorf("bench: search %s astar: %w", name, err)
			}
			aReads += f.DataIO().Reads
			aExp += ap.Expanded
		}
		n := float64(len(pairs))
		res.DijkstraReads[name] = float64(dReads) / n
		res.AStarReads[name] = float64(aReads) / n
		res.DijkstraExpanded = float64(dExp) / n
		res.AStarExpanded = float64(aExp) / n
	}
	return res, nil
}

// Print writes the search comparison.
func (r *SearchPathsResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Ablation A4: shortest-path I/O per access method (block = 2k, 8-page buffer)")
	fmt.Fprintf(w, "%-11s %14s %14s\n", "method", "dijkstra reads", "a* reads")
	for _, m := range r.Methods {
		fmt.Fprintf(w, "%-11s %14.1f %14.1f\n", m, r.DijkstraReads[m], r.AStarReads[m])
	}
	fmt.Fprintf(w, "(mean expansions per query: dijkstra %.0f, a* %.0f)\n",
		r.DijkstraExpanded, r.AStarExpanded)
}
