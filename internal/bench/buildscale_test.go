package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunBuildScale(t *testing.T) {
	res, err := RunBuildScale(BuildScaleConfig{
		Setup: smallSetup(),
		Sizes: []int{256, 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 2 sizes x 3 variants", len(res.Rows))
	}
	// The regression gates the CI smoke step relies on must hold even at
	// tiny sizes (speedup is only gated at the largest size, and 0 keeps
	// this test about plumbing, not machine speed).
	if err := res.Check(0, 0.02); err != nil {
		t.Fatal(err)
	}
	var txt bytes.Buffer
	res.Print(&txt)
	for _, want := range []string{"Build scale", "serial-ratiocut", "parallel-ratiocut", "parallel-multilevel"} {
		if !strings.Contains(txt.String(), want) {
			t.Fatalf("print output missing %q:\n%s", want, txt.String())
		}
	}
	var js bytes.Buffer
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back BuildScaleResult
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(res.Rows) || back.PageSize != res.PageSize {
		t.Fatalf("JSON roundtrip mismatch: %d rows, page size %d", len(back.Rows), back.PageSize)
	}
}

func TestBuildScaleCheckCatchesRegressions(t *testing.T) {
	mk := func() *BuildScaleResult {
		return &BuildScaleResult{Rows: []BuildScaleRow{
			{Nodes: 100, Variant: "serial-ratiocut", CRR: 0.8, Pages: 10, Speedup: 1},
			{Nodes: 100, Variant: "parallel-ratiocut", CRR: 0.8, Pages: 10, Speedup: 1},
			{Nodes: 100, Variant: "parallel-multilevel", CRR: 0.79, Pages: 10, Speedup: 3},
		}}
	}
	if err := mk().Check(2, 0.02); err != nil {
		t.Fatalf("healthy result rejected: %v", err)
	}
	r := mk()
	r.Rows[1].CRR = 0.81 // nondeterministic parallel path
	if err := r.Check(2, 0.02); err == nil {
		t.Fatal("determinism violation not caught")
	}
	r = mk()
	r.Rows[2].CRR = 0.7 // quality regression
	if err := r.Check(2, 0.02); err == nil {
		t.Fatal("CRR regression not caught")
	}
	r = mk()
	r.Rows[2].Speedup = 1.5 // performance regression
	if err := r.Check(2, 0.02); err == nil {
		t.Fatal("speedup regression not caught")
	}
	r = mk()
	r.Rows = r.Rows[:2] // missing variant
	if err := r.Check(2, 0.02); err == nil {
		t.Fatal("missing variant not caught")
	}
}
