package bench

import (
	"fmt"
	"io"
	"math/rand"

	"ccam/internal/graph"
	"ccam/internal/netfile"
)

// MixedConfig parameterizes the mixed-workload experiment (ablation
// A7): the IVHS setting of paper §1.1 — a database "updated
// frequently" while route queries run — swept over the update fraction
// of the operation mix.
type MixedConfig struct {
	Setup Setup
	// BlockSize defaults to 2048.
	BlockSize int
	// Ops is the number of operations per run (default 600).
	Ops int
	// UpdateFracs are the swept fractions of operations that are
	// updates (default {0, 0.1, 0.3, 0.5}). Updates split evenly
	// between travel-time refreshes (SetEdgeCost) and node
	// delete+reinsert pairs under the second-order policy; the
	// remainder are route evaluations (L = 20).
	UpdateFracs []float64
	// Methods defaults to {ccam-s, dfs-am, grid-file}.
	Methods []string
}

// MixedResult holds average data-page accesses per operation.
type MixedResult struct {
	UpdateFracs []float64
	Methods     []string
	// PagesPerOp[method][i] corresponds to UpdateFracs[i].
	PagesPerOp map[string][]float64
	// FinalCRR[method][i] is the clustering quality left after the run.
	FinalCRR map[string][]float64
}

// RunMixedWorkload measures sustained cost under interleaved queries
// and updates. Each operation runs cold (buffer reset), counting
// reads+writes, so the number is comparable to the per-operation
// experiments.
func RunMixedWorkload(cfg MixedConfig) (*MixedResult, error) {
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 2048
	}
	if cfg.Ops == 0 {
		cfg.Ops = 600
	}
	if len(cfg.UpdateFracs) == 0 {
		cfg.UpdateFracs = []float64{0, 0.1, 0.3, 0.5}
	}
	if len(cfg.Methods) == 0 {
		cfg.Methods = []string{"ccam-s", "dfs-am", "grid-file"}
	}
	res := &MixedResult{
		UpdateFracs: cfg.UpdateFracs,
		Methods:     cfg.Methods,
		PagesPerOp:  map[string][]float64{},
		FinalCRR:    map[string][]float64{},
	}
	for _, name := range cfg.Methods {
		res.PagesPerOp[name] = make([]float64, len(cfg.UpdateFracs))
		res.FinalCRR[name] = make([]float64, len(cfg.UpdateFracs))
		for i, frac := range cfg.UpdateFracs {
			pages, crr, err := runMixed(name, frac, cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: mixed %s@%.2f: %w", name, frac, err)
			}
			res.PagesPerOp[name][i] = pages
			res.FinalCRR[name][i] = crr
		}
	}
	return res, nil
}

func runMixed(name string, updateFrac float64, cfg MixedConfig) (float64, float64, error) {
	g, err := cfg.Setup.Network()
	if err != nil {
		return 0, 0, err
	}
	m, err := buildMethod(name, g, cfg.BlockSize, 64, cfg.Setup.Seed)
	if err != nil {
		return 0, 0, err
	}
	f := m.File()
	rng := rand.New(rand.NewSource(cfg.Setup.Seed + 17))
	routes, err := graph.RandomWalkRoutes(g, 64, 20, rng)
	if err != nil {
		return 0, 0, err
	}
	ids := g.NodeIDs()
	edges := g.Edges()

	var total int64
	for op := 0; op < cfg.Ops; op++ {
		if err := f.ResetIO(); err != nil {
			return 0, 0, err
		}
		switch {
		case rng.Float64() >= updateFrac:
			if _, err := f.EvaluateRoute(routes[rng.Intn(len(routes))]); err != nil {
				return 0, 0, err
			}
		case rng.Intn(2) == 0:
			e := edges[rng.Intn(len(edges))]
			// The edge may have vanished with a deleted endpoint;
			// skip those.
			if !f.Has(e.From) || !f.Has(e.To) {
				continue
			}
			if err := f.SetEdgeCost(e.From, e.To, float32(e.Cost*(0.5+rng.Float64()))); err != nil {
				return 0, 0, err
			}
		default:
			x := ids[rng.Intn(len(ids))]
			if !f.Has(x) {
				continue
			}
			iop, err := netfile.InsertOpFromNode(g, x)
			if err != nil {
				return 0, 0, err
			}
			// Restrict to still-present endpoints.
			iop = restrictOpToFile(f, iop)
			if err := m.Delete(x, netfile.SecondOrder); err != nil {
				return 0, 0, err
			}
			if err := m.Insert(iop, netfile.SecondOrder); err != nil {
				return 0, 0, err
			}
		}
		if err := f.Flush(); err != nil {
			return 0, 0, err
		}
		st := f.DataIO()
		total += st.Reads + st.Writes
	}
	return float64(total) / float64(cfg.Ops), graph.CRR(g, f.Placement()), nil
}

// restrictOpToFile drops edges whose other endpoint is no longer
// stored.
func restrictOpToFile(f *netfile.File, op *netfile.InsertOp) *netfile.InsertOp {
	rec := op.Rec.Clone()
	var succs []netfile.SuccEntry
	for _, s := range rec.Succs {
		if f.Has(s.To) {
			succs = append(succs, s)
		}
	}
	rec.Succs = succs
	var preds []graph.NodeID
	var costs []float32
	for i, p := range rec.Preds {
		if f.Has(p) {
			preds = append(preds, p)
			costs = append(costs, op.PredCosts[i])
		}
	}
	rec.Preds = preds
	return &netfile.InsertOp{Rec: rec, PredCosts: costs}
}

// Print writes the mixed-workload table.
func (r *MixedResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Ablation A7: mixed workload — avg data-page accesses per operation (block = 2k)")
	fmt.Fprintf(w, "%-11s", "method")
	for _, frac := range r.UpdateFracs {
		fmt.Fprintf(w, " %10s", fmt.Sprintf("upd=%.0f%%", frac*100))
	}
	fmt.Fprintln(w)
	for _, m := range r.Methods {
		fmt.Fprintf(w, "%-11s", m)
		for i := range r.UpdateFracs {
			fmt.Fprintf(w, " %10.2f", r.PagesPerOp[m][i])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "final CRR after the run:")
	for _, m := range r.Methods {
		fmt.Fprintf(w, "%-11s", m)
		for i := range r.UpdateFracs {
			fmt.Fprintf(w, " %10.4f", r.FinalCRR[m][i])
		}
		fmt.Fprintln(w)
	}
}
