package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"ccam/internal/ccam"
	"ccam/internal/graph"
	"ccam/internal/netfile"
)

// Fig7Config parameterizes the reorganization-policy experiment (paper
// Figure 7): a CCAM file is built on part of the map and the remaining
// nodes are inserted under each policy, tracking per-insert I/O and the
// CRR trajectory.
type Fig7Config struct {
	Setup Setup
	// BlockSize defaults to 1024.
	BlockSize int
	// InsertFrac is the fraction of nodes inserted dynamically
	// (default 0.20, "insertion of 20% of the nodes").
	InsertFrac float64
	// Points is the number of samples along the insertion sequence for
	// the reported series (default 10).
	Points int
	// Policies defaults to all three.
	Policies []netfile.Policy
	// LazyEvery tunes the Lazy policy's reorganization threshold
	// (default: the ccam package default).
	LazyEvery int
}

// Fig7Series is the trajectory of one policy.
type Fig7Series struct {
	Policy netfile.Policy
	// InsertCounts are the x-coordinates (number of insertions done).
	InsertCounts []int
	// AvgIO[i] is the cumulative average data-page accesses
	// (reads+writes) per insert after InsertCounts[i] insertions.
	AvgIO []float64
	// CRR[i] is the file's CRR after InsertCounts[i] insertions.
	CRR []float64
	// CPUTime is the total wall-clock time spent inside Insert across
	// the whole run — the reorganization CPU cost the paper's future
	// work asks about (reclustering is CPU-bound; the simulated disk
	// contributes nothing).
	CPUTime time.Duration
}

// Fig7Result holds one series per policy.
type Fig7Result struct {
	Series []Fig7Series
}

// RunFig7 reproduces Figure 7: the I/O cost and CRR effects of the
// first-order, second-order and higher-order reorganization policies
// during the insertion of 20% of the road map's nodes.
func RunFig7(cfg Fig7Config) (*Fig7Result, error) {
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 1024
	}
	if cfg.InsertFrac == 0 {
		cfg.InsertFrac = 0.20
	}
	if cfg.Points == 0 {
		cfg.Points = 10
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = []netfile.Policy{netfile.FirstOrder, netfile.SecondOrder, netfile.HigherOrder}
	}
	full, err := cfg.Setup.Network()
	if err != nil {
		return nil, err
	}
	// Choose the late-arriving nodes once so all policies see the same
	// insertion sequence.
	ids := full.NodeIDs()
	rng := rand.New(rand.NewSource(cfg.Setup.Seed + 7))
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	nLate := int(float64(len(ids)) * cfg.InsertFrac)
	late := ids[:nLate]
	lateSet := map[graph.NodeID]bool{}
	for _, id := range late {
		lateSet[id] = true
	}
	base := full.Clone()
	for _, id := range late {
		base.RemoveNode(id)
	}

	res := &Fig7Result{}
	for _, policy := range cfg.Policies {
		series, err := runFig7Policy(full, base, late, policy, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: fig7 %s: %w", policy, err)
		}
		res.Series = append(res.Series, *series)
	}
	return res, nil
}

func runFig7Policy(full, base *graph.Network, late []graph.NodeID, policy netfile.Policy, cfg Fig7Config) (*Fig7Series, error) {
	m, err := ccam.New(ccam.Config{PageSize: cfg.BlockSize, PoolPages: 64, Seed: cfg.Setup.Seed, LazyEvery: cfg.LazyEvery})
	if err != nil {
		return nil, err
	}
	if err := m.Build(base); err != nil {
		return nil, err
	}
	f := m.File()
	cur := base.Clone()

	series := &Fig7Series{Policy: policy}
	every := len(late) / cfg.Points
	if every < 1 {
		every = 1
	}
	var totalIO int64
	for i, id := range late {
		op, err := restrictedInsertOp(full, cur, id)
		if err != nil {
			return nil, err
		}
		if err := f.ResetIO(); err != nil {
			return nil, err
		}
		start := time.Now()
		if err := m.Insert(op, policy); err != nil {
			return nil, fmt.Errorf("insert %d: %w", id, err)
		}
		series.CPUTime += time.Since(start)
		if err := f.Flush(); err != nil {
			return nil, err
		}
		io := f.DataIO()
		totalIO += io.Reads + io.Writes
		if err := mirrorInsertOp(cur, op); err != nil {
			return nil, err
		}
		if (i+1)%every == 0 || i == len(late)-1 {
			series.InsertCounts = append(series.InsertCounts, i+1)
			series.AvgIO = append(series.AvgIO, float64(totalIO)/float64(i+1))
			series.CRR = append(series.CRR, graph.CRR(cur, f.Placement()))
		}
	}
	return series, nil
}

// restrictedInsertOp builds the insert operation for node id of full,
// keeping only edges whose other endpoint already exists in cur.
func restrictedInsertOp(full, cur *graph.Network, id graph.NodeID) (*netfile.InsertOp, error) {
	n, err := full.Node(id)
	if err != nil {
		return nil, err
	}
	rec := &netfile.Record{ID: id, Pos: n.Pos}
	if n.Attrs != nil {
		rec.Attrs = append([]byte(nil), n.Attrs...)
	}
	for _, e := range full.SuccessorEdges(id) {
		if cur.HasNode(e.To) {
			rec.Succs = append(rec.Succs, netfile.SuccEntry{To: e.To, Cost: float32(e.Cost)})
		}
	}
	op := &netfile.InsertOp{Rec: rec}
	for _, p := range full.Predecessors(id) {
		if cur.HasNode(p) {
			e, err := full.Edge(p, id)
			if err != nil {
				return nil, err
			}
			rec.Preds = append(rec.Preds, p)
			op.PredCosts = append(op.PredCosts, float32(e.Cost))
		}
	}
	return op, nil
}

// mirrorInsertOp applies op to the reference network.
func mirrorInsertOp(g *graph.Network, op *netfile.InsertOp) error {
	rec := op.Rec
	if err := g.AddNode(graph.Node{ID: rec.ID, Pos: rec.Pos, Attrs: rec.Attrs}); err != nil {
		return err
	}
	for _, s := range rec.Succs {
		if err := g.AddEdge(graph.Edge{From: rec.ID, To: s.To, Cost: float64(s.Cost), Weight: 1}); err != nil {
			return err
		}
	}
	for i, p := range rec.Preds {
		if err := g.AddEdge(graph.Edge{From: p, To: rec.ID, Cost: float64(op.PredCosts[i]), Weight: 1}); err != nil {
			return err
		}
	}
	return nil
}

// Print writes both panels of Figure 7 (average I/O per insert; CRR).
func (r *Fig7Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 7: reorganization policies during insertion of 20% of the nodes")
	fmt.Fprintf(w, "%-10s", "(cpu)")
	for _, s := range r.Series {
		fmt.Fprintf(w, " %13s", s.CPUTime.Round(time.Millisecond))
	}
	fmt.Fprintln(w)
	for _, panel := range []string{"avg I/O per insert", "CRR"} {
		fmt.Fprintf(w, "-- %s --\n", panel)
		if len(r.Series) == 0 {
			continue
		}
		fmt.Fprintf(w, "%-10s", "inserts")
		for _, s := range r.Series {
			fmt.Fprintf(w, " %13s", s.Policy)
		}
		fmt.Fprintln(w)
		for i := range r.Series[0].InsertCounts {
			fmt.Fprintf(w, "%-10d", r.Series[0].InsertCounts[i])
			for _, s := range r.Series {
				v := 0.0
				if i < len(s.InsertCounts) {
					if panel == "CRR" {
						v = s.CRR[i]
					} else {
						v = s.AvgIO[i]
					}
				}
				fmt.Fprintf(w, " %13.4f", v)
			}
			fmt.Fprintln(w)
		}
	}
}
