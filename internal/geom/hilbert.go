package geom

// Hilbert curve indexing. Unlike the Z-order curve, consecutive Hilbert
// positions are always grid neighbors, which gives better locality for
// proximity-based record orderings (the HILBERT-AM baseline).

// HilbertIndex maps a cell (x, y) of the 2^order × 2^order grid to its
// position along the Hilbert curve. order must be ≤ 31.
func HilbertIndex(order uint, x, y uint32) uint64 {
	var d uint64
	for s := uint32(1) << (order - 1); s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		x, y = hilbertRot(s, x, y, rx, ry)
	}
	return d
}

// HilbertPoint is the inverse of HilbertIndex.
func HilbertPoint(order uint, d uint64) (x, y uint32) {
	t := d
	for s := uint32(1); s < 1<<order; s <<= 1 {
		rx := uint32(1) & uint32(t/2)
		ry := uint32(1) & uint32(t^uint64(rx))
		x, y = hilbertRot(s, x, y, rx, ry)
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

// hilbertRot rotates/flips a quadrant appropriately.
func hilbertRot(s, x, y, rx, ry uint32) (uint32, uint32) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}

// HilbertOrder is the grid resolution used by Hilbert keyed orderings:
// 16 bits per axis, matching the Z-order index keys.
const HilbertOrder = 16

// Hilbert returns the Hilbert index of p under the quantizer at
// HilbertOrder resolution.
func (q Quantizer) Hilbert(p Point) uint64 {
	ix, iy := q.Grid(p)
	return HilbertIndex(HilbertOrder, ix>>15, iy>>15)
}
