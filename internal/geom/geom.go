// Package geom provides the small amount of computational geometry CCAM
// needs: 2-D points, bit-interleaved Z-order (Morton) values used to key
// the secondary index, and Z-region decomposition for range queries.
//
// The paper stores x, y coordinates in every node record and orders the
// secondary B+-tree index by the Z-order of those coordinates (Orenstein
// and Merrett's class of data structures for associative searching), so
// point and range queries on the embedding space remain possible on top
// of a connectivity-clustered data file.
package geom

import "fmt"

// Point is a location in the plane. Road-map coordinates are stored in
// arbitrary map units; only their relative order matters for Z-values.
type Point struct {
	X, Y float64
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// Rect is an axis-aligned rectangle, inclusive of its boundary.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning the two corner points in any
// orientation.
func NewRect(a, b Point) Rect {
	r := Rect{Min: a, Max: b}
	if r.Min.X > r.Max.X {
		r.Min.X, r.Max.X = r.Max.X, r.Min.X
	}
	if r.Min.Y > r.Max.Y {
		r.Min.Y, r.Max.Y = r.Max.Y, r.Min.Y
	}
	return r
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Intersects reports whether the two rectangles share any point.
func (r Rect) Intersects(o Rect) bool {
	return r.Min.X <= o.Max.X && o.Min.X <= r.Max.X &&
		r.Min.Y <= o.Max.Y && o.Min.Y <= r.Max.Y
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Quantizer maps points in a bounding rectangle to 32-bit grid
// coordinates so that they can be interleaved into 64-bit Z-values.
// The zero Quantizer is not useful; construct one with NewQuantizer.
type Quantizer struct {
	bounds Rect
	sx, sy float64 // scale factors to [0, maxCoord]
}

// maxCoord is the largest quantized coordinate: 2^31-1 keeps the
// interleaved value within the positive range of a uint64 and leaves
// headroom for exact boundary handling.
const maxCoord = 1<<31 - 1

// NewQuantizer returns a Quantizer for points inside bounds. Degenerate
// (zero-width or zero-height) bounds are accepted; the collapsed axis
// quantizes to zero.
func NewQuantizer(bounds Rect) Quantizer {
	q := Quantizer{bounds: bounds}
	if w := bounds.Width(); w > 0 {
		q.sx = maxCoord / w
	}
	if h := bounds.Height(); h > 0 {
		q.sy = maxCoord / h
	}
	return q
}

// Bounds returns the rectangle the quantizer was built with.
func (q Quantizer) Bounds() Rect { return q.bounds }

// Grid returns the quantized 31-bit grid cell of p. Points outside the
// bounds are clamped onto the boundary.
func (q Quantizer) Grid(p Point) (ix, iy uint32) {
	x := (p.X - q.bounds.Min.X) * q.sx
	y := (p.Y - q.bounds.Min.Y) * q.sy
	return clampCoord(x), clampCoord(y)
}

func clampCoord(v float64) uint32 {
	if v <= 0 {
		return 0
	}
	if v >= maxCoord {
		return maxCoord
	}
	return uint32(v)
}

// Z returns the Z-order (Morton) value of p under the quantizer.
func (q Quantizer) Z(p Point) uint64 {
	ix, iy := q.Grid(p)
	return Interleave(ix, iy)
}

// Interleave bit-interleaves x and y into a Z-order value with x
// occupying the even bit positions (bit 0, 2, 4, ...) and y the odd.
func Interleave(x, y uint32) uint64 {
	return spread(x) | spread(y)<<1
}

// Deinterleave is the inverse of Interleave.
func Deinterleave(z uint64) (x, y uint32) {
	return compact(z), compact(z >> 1)
}

// spread inserts a zero bit above every bit of v, producing a 64-bit
// value with the bits of v at even positions.
func spread(v uint32) uint64 {
	x := uint64(v)
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & 0x00ff00ff00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f0f0f0f0f
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// compact drops the odd bits of z and packs the even bits into a uint32.
func compact(z uint64) uint32 {
	x := z & 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0f0f0f0f0f0f0f0f
	x = (x | x>>4) & 0x00ff00ff00ff00ff
	x = (x | x>>8) & 0x0000ffff0000ffff
	x = (x | x>>16) & 0x00000000ffffffff
	return uint32(x)
}

// ZRange is an inclusive interval of Z-values.
type ZRange struct {
	Lo, Hi uint64
}

// ZRangeOf returns the smallest single Z interval covering the query
// rectangle under q. The interval may include Z-values whose points lie
// outside the rectangle; callers filter with Rect.Contains, or use
// BigMin to skip gaps during a scan.
func (q Quantizer) ZRangeOf(r Rect) ZRange {
	lox, loy := q.Grid(Point{X: maxf(r.Min.X, q.bounds.Min.X), Y: maxf(r.Min.Y, q.bounds.Min.Y)})
	hix, hiy := q.Grid(Point{X: minf(r.Max.X, q.bounds.Max.X), Y: minf(r.Max.Y, q.bounds.Max.Y)})
	return ZRange{Lo: Interleave(lox, loy), Hi: Interleave(hix, hiy)}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// InZRect reports whether the point encoded by z lies inside the grid
// rectangle [lo, hi] interpreted dimension-wise (the Z-region test).
func InZRect(z, lo, hi uint64) bool {
	zx, zy := Deinterleave(z)
	lox, loy := Deinterleave(lo)
	hix, hiy := Deinterleave(hi)
	return zx >= lox && zx <= hix && zy >= loy && zy <= hiy
}

// BigMin returns the smallest Z-value greater than z that lies inside
// the Z-region [lo, hi] (the BIGMIN of Tropf and Herzog). A scan over a
// Z-ordered index visits [lo, hi]; on hitting a value outside the grid
// rectangle it jumps to BigMin to skip the gap. The second result is
// false when no such value exists.
func BigMin(z, lo, hi uint64) (uint64, bool) {
	bigmin := uint64(0)
	haveBigmin := false
	for bit := 63; bit >= 0; bit-- {
		mask := uint64(1) << uint(bit)
		zb, lb, hb := z&mask != 0, lo&mask != 0, hi&mask != 0
		switch {
		case !zb && !lb && !hb:
			// all zero: continue
		case !zb && !lb && hb:
			// Candidate: region splits; remember the min of the upper
			// half, continue searching the lower half.
			bigmin = loadBits(lo, bit)
			haveBigmin = true
			hi = maxBits(hi, bit)
		case !zb && lb && hb:
			return lo, true
		case zb && !lb && !hb:
			if haveBigmin {
				return bigmin, true
			}
			return 0, false
		case zb && !lb && hb:
			lo = loadBits(lo, bit)
		case zb && lb && hb:
			// all one: continue
		default:
			// lb && !hb cannot occur for a valid region on this bit
			// pattern; treat as exhausted.
			if haveBigmin {
				return bigmin, true
			}
			return 0, false
		}
	}
	if haveBigmin {
		return bigmin, true
	}
	return 0, false
}

// loadBits returns v with bit set to 1 and, in the same dimension, all
// lower bits cleared ("load 10000..." in the BIGMIN literature).
func loadBits(v uint64, bit int) uint64 {
	mask := uint64(1) << uint(bit)
	dimMask := dimensionMask(bit)
	below := dimMask & (mask - 1)
	return (v &^ below) | mask
}

// maxBits returns v with bit cleared and, in the same dimension, all
// lower bits set ("load 01111...").
func maxBits(v uint64, bit int) uint64 {
	mask := uint64(1) << uint(bit)
	dimMask := dimensionMask(bit)
	below := dimMask & (mask - 1)
	return (v &^ mask) | below
}

// dimensionMask returns the mask selecting all bits belonging to the
// same interleaved dimension as the given bit position.
func dimensionMask(bit int) uint64 {
	if bit%2 == 0 {
		return 0x5555555555555555
	}
	return 0xaaaaaaaaaaaaaaaa
}
