package geom

import "encoding/json"

// The JSON form of a Rect is shared by every layer that names a query
// window — the CCAM-QL WINDOW clause, RangeQuery over the wire, and
// the inspect tooling — so a window serialized by one can be decoded
// by any other without a parallel wire struct.

// rectJSON is the wire shape of a Rect.
type rectJSON struct {
	MinX float64 `json:"min_x"`
	MinY float64 `json:"min_y"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
}

// MarshalJSON encodes the rectangle as
// {"min_x":…,"min_y":…,"max_x":…,"max_y":…}.
func (r Rect) MarshalJSON() ([]byte, error) {
	return json.Marshal(rectJSON{
		MinX: r.Min.X, MinY: r.Min.Y, MaxX: r.Max.X, MaxY: r.Max.Y,
	})
}

// UnmarshalJSON decodes the wire shape, accepting corners in any
// orientation (they are normalized as by NewRect).
func (r *Rect) UnmarshalJSON(data []byte) error {
	var w rectJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*r = NewRect(Point{X: w.MinX, Y: w.MinY}, Point{X: w.MaxX, Y: w.MaxY})
	return nil
}
