package geom

import (
	"encoding/json"
	"testing"
)

func TestRectJSONRoundTrip(t *testing.T) {
	r := NewRect(Point{X: -1.5, Y: 2}, Point{X: 3, Y: 4.25})
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"min_x":-1.5,"min_y":2,"max_x":3,"max_y":4.25}`
	if string(b) != want {
		t.Fatalf("Marshal = %s, want %s", b, want)
	}
	var back Rect
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != r {
		t.Fatalf("round trip = %+v, want %+v", back, r)
	}
}

func TestRectJSONNormalizesCorners(t *testing.T) {
	var r Rect
	if err := json.Unmarshal([]byte(`{"min_x":5,"min_y":6,"max_x":1,"max_y":2}`), &r); err != nil {
		t.Fatal(err)
	}
	if want := NewRect(Point{X: 5, Y: 6}, Point{X: 1, Y: 2}); r != want {
		t.Fatalf("decoded %+v, want normalized %+v", r, want)
	}
}
