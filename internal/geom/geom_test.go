package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInterleaveRoundTrip(t *testing.T) {
	cases := []struct{ x, y uint32 }{
		{0, 0}, {1, 0}, {0, 1}, {1, 1},
		{maxCoord, maxCoord}, {maxCoord, 0}, {0, maxCoord},
		{12345, 67890}, {1 << 30, 1 << 29},
	}
	for _, c := range cases {
		z := Interleave(c.x, c.y)
		gx, gy := Deinterleave(z)
		if gx != c.x || gy != c.y {
			t.Errorf("Interleave(%d,%d) round trip = (%d,%d)", c.x, c.y, gx, gy)
		}
	}
}

func TestInterleaveRoundTripProperty(t *testing.T) {
	f := func(x, y uint32) bool {
		x &= maxCoord
		y &= maxCoord
		gx, gy := Deinterleave(Interleave(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInterleaveMonotoneInEachDimension(t *testing.T) {
	// Fixing one coordinate, increasing the other must increase Z.
	f := func(x1, x2, y uint32) bool {
		x1 &= maxCoord
		x2 &= maxCoord
		y &= maxCoord
		if x1 == x2 {
			return Interleave(x1, y) == Interleave(x2, y)
		}
		lo, hi := x1, x2
		if lo > hi {
			lo, hi = hi, lo
		}
		return Interleave(lo, y) < Interleave(hi, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizerCorners(t *testing.T) {
	b := NewRect(Point{0, 0}, Point{100, 200})
	q := NewQuantizer(b)
	if x, y := q.Grid(Point{0, 0}); x != 0 || y != 0 {
		t.Errorf("min corner = (%d,%d), want (0,0)", x, y)
	}
	x, y := q.Grid(Point{100, 200})
	if x != maxCoord || y != maxCoord {
		t.Errorf("max corner = (%d,%d), want (%d,%d)", x, y, maxCoord, maxCoord)
	}
	// Out-of-bounds points clamp.
	if x, y := q.Grid(Point{-5, 300}); x != 0 || y != maxCoord {
		t.Errorf("clamp = (%d,%d)", x, y)
	}
}

func TestQuantizerDegenerateBounds(t *testing.T) {
	q := NewQuantizer(NewRect(Point{5, 5}, Point{5, 5}))
	if z := q.Z(Point{5, 5}); z != 0 {
		t.Errorf("degenerate bounds Z = %d, want 0", z)
	}
}

func TestRectContainsIntersects(t *testing.T) {
	r := NewRect(Point{10, 20}, Point{0, 0}) // corners given out of order
	if r.Min.X != 0 || r.Min.Y != 0 || r.Max.X != 10 || r.Max.Y != 20 {
		t.Fatalf("NewRect normalization failed: %+v", r)
	}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{10, 20}) || !r.Contains(Point{5, 5}) {
		t.Error("Contains rejects interior/boundary point")
	}
	if r.Contains(Point{10.01, 5}) {
		t.Error("Contains accepts exterior point")
	}
	if !r.Intersects(NewRect(Point{9, 19}, Point{30, 30})) {
		t.Error("overlapping rects do not intersect")
	}
	if r.Intersects(NewRect(Point{11, 0}, Point{20, 20})) {
		t.Error("disjoint rects intersect")
	}
	// Touching edges intersect (boundary inclusive).
	if !r.Intersects(NewRect(Point{10, 0}, Point{20, 20})) {
		t.Error("touching rects should intersect")
	}
}

func TestZPreservesProximityOrderOnDiagonal(t *testing.T) {
	q := NewQuantizer(NewRect(Point{0, 0}, Point{1, 1}))
	// Along the main diagonal Z is strictly increasing.
	prev := uint64(0)
	for i := 1; i <= 100; i++ {
		p := Point{float64(i) / 100, float64(i) / 100}
		z := q.Z(p)
		if z <= prev {
			t.Fatalf("Z not increasing along diagonal at step %d", i)
		}
		prev = z
	}
}

func TestInZRect(t *testing.T) {
	lo := Interleave(2, 3)
	hi := Interleave(10, 12)
	if !InZRect(Interleave(5, 7), lo, hi) {
		t.Error("interior point rejected")
	}
	if InZRect(Interleave(1, 7), lo, hi) {
		t.Error("x below range accepted")
	}
	if InZRect(Interleave(5, 13), lo, hi) {
		t.Error("y above range accepted")
	}
	if !InZRect(lo, lo, hi) || !InZRect(hi, lo, hi) {
		t.Error("corners must be inside")
	}
}

func TestBigMinSkipsGaps(t *testing.T) {
	// Query rectangle [2,10]x[3,12]. For any z outside the rectangle,
	// BigMin must return the smallest in-rectangle Z above z.
	lo := Interleave(2, 3)
	hi := Interleave(10, 12)

	// Collect all in-rect z values by brute force.
	var inRect []uint64
	for x := uint32(0); x <= 16; x++ {
		for y := uint32(0); y <= 16; y++ {
			z := Interleave(x, y)
			if InZRect(z, lo, hi) {
				inRect = append(inRect, z)
			}
		}
	}
	next := func(z uint64) (uint64, bool) {
		best := uint64(0)
		found := false
		for _, v := range inRect {
			if v > z && (!found || v < best) {
				best, found = v, true
			}
		}
		return best, found
	}
	for x := uint32(0); x <= 16; x++ {
		for y := uint32(0); y <= 16; y++ {
			z := Interleave(x, y)
			if InZRect(z, lo, hi) {
				continue
			}
			want, wantOK := next(z)
			got, gotOK := BigMin(z, lo, hi)
			if gotOK != wantOK || (gotOK && got != want) {
				t.Fatalf("BigMin(z=Interleave(%d,%d)) = (%d,%v), want (%d,%v)",
					x, y, got, gotOK, want, wantOK)
			}
		}
	}
}

func TestBigMinRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		lox, hix := uint32(rng.Intn(32)), uint32(rng.Intn(32))
		loy, hiy := uint32(rng.Intn(32)), uint32(rng.Intn(32))
		if lox > hix {
			lox, hix = hix, lox
		}
		if loy > hiy {
			loy, hiy = hiy, loy
		}
		lo, hi := Interleave(lox, loy), Interleave(hix, hiy)
		z := Interleave(uint32(rng.Intn(64)), uint32(rng.Intn(64)))
		if InZRect(z, lo, hi) {
			continue
		}
		got, ok := BigMin(z, lo, hi)
		// Verify by brute force over the rectangle.
		want := uint64(0)
		wantOK := false
		for x := lox; x <= hix; x++ {
			for y := loy; y <= hiy; y++ {
				v := Interleave(x, y)
				if v > z && (!wantOK || v < want) {
					want, wantOK = v, true
				}
			}
		}
		if ok != wantOK || (ok && got != want) {
			t.Fatalf("trial %d: BigMin = (%d,%v), want (%d,%v)", trial, got, ok, want, wantOK)
		}
	}
}

func TestZRangeOfClampsToBounds(t *testing.T) {
	q := NewQuantizer(NewRect(Point{0, 0}, Point{100, 100}))
	zr := q.ZRangeOf(NewRect(Point{-50, -50}, Point{200, 200}))
	if zr.Lo != 0 {
		t.Errorf("Lo = %d, want 0", zr.Lo)
	}
	if zr.Hi != Interleave(maxCoord, maxCoord) {
		t.Errorf("Hi = %d, want full", zr.Hi)
	}
	if zr.Lo > zr.Hi {
		t.Error("Lo > Hi")
	}
}

func TestHilbertRoundTrip(t *testing.T) {
	const order = 7
	n := uint32(1) << order
	seen := map[uint64]bool{}
	for x := uint32(0); x < n; x++ {
		for y := uint32(0); y < n; y++ {
			d := HilbertIndex(order, x, y)
			if seen[d] {
				t.Fatalf("index %d repeated", d)
			}
			seen[d] = true
			gx, gy := HilbertPoint(order, d)
			if gx != x || gy != y {
				t.Fatalf("round trip (%d,%d) -> %d -> (%d,%d)", x, y, d, gx, gy)
			}
		}
	}
	if len(seen) != int(n)*int(n) {
		t.Fatalf("covered %d cells", len(seen))
	}
}

func TestHilbertAdjacency(t *testing.T) {
	// The defining property: consecutive curve positions are grid
	// neighbors (Manhattan distance exactly 1). The Z curve lacks this.
	const order = 6
	n := uint64(1) << (2 * order)
	px, py := HilbertPoint(order, 0)
	for d := uint64(1); d < n; d++ {
		x, y := HilbertPoint(order, d)
		dist := absDiff(x, px) + absDiff(y, py)
		if dist != 1 {
			t.Fatalf("positions %d and %d are %d apart", d-1, d, dist)
		}
		px, py = x, y
	}
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestQuantizerHilbert(t *testing.T) {
	q := NewQuantizer(NewRect(Point{X: 0, Y: 0}, Point{X: 100, Y: 100}))
	// Distinct points get valid indices within the curve's range.
	max := uint64(1) << (2 * HilbertOrder)
	a := q.Hilbert(Point{X: 10, Y: 10})
	b := q.Hilbert(Point{X: 90, Y: 90})
	if a >= max || b >= max {
		t.Fatalf("indices out of range: %d %d", a, b)
	}
	if a == b {
		t.Fatal("distant points collide")
	}
	// Nearby points have nearby indices more often than far ones; test
	// a weak form on the diagonal.
	near := q.Hilbert(Point{X: 10.5, Y: 10.5})
	if d := absDiff64(a, near); d > max/1024 {
		t.Fatalf("neighbor index distance %d implausibly large", d)
	}
}

func absDiff64(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}
