package ccam

// Acceptance tests for CCAM-QL: the planner must pick a different
// access path for a point lookup, a window query and a deep
// neighborhood, and its predicted data-page accesses must track the
// ReqStats-measured actuals within 30% (they are exact by
// construction: predictions are distinct-page counts resolved from the
// memory-resident structures, and a cold pool reads each distinct page
// once).

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
)

func qlStore(t *testing.T) (*Store, *Network) {
	t.Helper()
	g := testMap(t)
	s, err := Open(Options{PageSize: 1024, PoolPages: 512, Seed: 3, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	if err := s.Build(g); err != nil {
		t.Fatal(err)
	}
	return s, g
}

// runCold explains the statement, then executes it against a cold
// buffer pool with a ReqStats account attached, returning the explain
// result, the execution result and the measured stats.
func runCold(t *testing.T, s *Store, stmt string) (*Result, *Result, *ReqStats) {
	t.Helper()
	ctx := context.Background()
	exp, err := s.Query(ctx, "EXPLAIN "+stmt)
	if err != nil {
		t.Fatalf("EXPLAIN %s: %v", stmt, err)
	}
	if !exp.Explain || exp.Plan == nil || exp.Text == "" {
		t.Fatalf("EXPLAIN %s: incomplete result %+v", stmt, exp)
	}
	if err := s.ResetIO(); err != nil {
		t.Fatal(err)
	}
	rs := &ReqStats{}
	res, err := s.Query(WithReqStats(ctx, rs), stmt)
	if err != nil {
		t.Fatalf("Query(%s): %v", stmt, err)
	}
	return exp, res, rs
}

func TestQueryPlannerPicksDistinctPathsAndPredictsIO(t *testing.T) {
	s, g := qlStore(t)
	id := g.NodeIDs()[len(g.NodeIDs())/2]
	rec, err := s.Find(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}

	stmts := []struct {
		src      string
		wantPath string
	}{
		{fmt.Sprintf("FIND %d", id), "btree-point"},
		{fmt.Sprintf("WINDOW (%g, %g, %g, %g)",
			rec.Pos.X-200, rec.Pos.Y-200, rec.Pos.X+200, rec.Pos.Y+200), "zrange"},
		{fmt.Sprintf("NEIGHBORS %d DEPTH 2 AGG SUM(cost)", id), "successor-expansion"},
	}
	paths := map[string]bool{}
	for _, tc := range stmts {
		exp, res, rs := runCold(t, s, tc.src)
		got := string(exp.Plan.Chosen.Path)
		if got != tc.wantPath {
			t.Errorf("%s: chose %s, want %s", tc.src, got, tc.wantPath)
		}
		paths[got] = true

		predicted := float64(exp.Plan.Chosen.Pages)
		actual := float64(rs.DataReads)
		if actual == 0 {
			t.Fatalf("%s: no data reads measured", tc.src)
		}
		if rel := math.Abs(predicted-actual) / actual; rel > 0.30 {
			t.Errorf("%s: predicted %v data pages, measured %v (%.0f%% off)",
				tc.src, predicted, actual, rel*100)
		}
		if res.Actual == nil || res.Actual.DataReads != rs.DataReads {
			t.Errorf("%s: Result.Actual = %+v, ReqStats reads %d",
				tc.src, res.Actual, rs.DataReads)
		}
		if res.Plan == nil || string(res.Plan.Chosen.Path) != got {
			t.Errorf("%s: executed plan differs from explained plan", tc.src)
		}
	}
	if len(paths) != 3 {
		t.Errorf("expected 3 distinct access paths, got %v", paths)
	}
}

func TestQueryHugeWindowFallsBackToScan(t *testing.T) {
	s, _ := qlStore(t)
	stmt := "WINDOW (-1e9, -1e9, 1e9, 1e9)"
	exp, res, rs := runCold(t, s, stmt)
	if got := string(exp.Plan.Chosen.Path); got != "pag-scan" {
		t.Fatalf("huge window chose %s, want pag-scan", got)
	}
	if exp.Plan.Chosen.Pages != s.NumPages() {
		t.Errorf("scan predicted %d pages, want %d", exp.Plan.Chosen.Pages, s.NumPages())
	}
	if rs.DataReads != int64(s.NumPages()) {
		t.Errorf("scan measured %d reads, want %d", rs.DataReads, s.NumPages())
	}
	if res.Count != s.Len() {
		t.Errorf("huge window matched %d nodes, want %d", res.Count, s.Len())
	}
}

func TestQueryRouteAndPathPredictions(t *testing.T) {
	s, g := qlStore(t)
	// A genuine route: follow successor edges without backtracking.
	start := g.NodeIDs()[0]
	route := []NodeID{start}
	cur := start
	for len(route) < 6 {
		rec, err := s.Find(context.Background(), cur)
		if err != nil {
			t.Fatal(err)
		}
		advanced := false
		for _, sc := range rec.Succs {
			seen := false
			for _, r := range route {
				if r == sc.To {
					seen = true
					break
				}
			}
			if !seen {
				route = append(route, sc.To)
				cur = sc.To
				advanced = true
				break
			}
		}
		if !advanced {
			break
		}
	}
	if len(route) < 3 {
		t.Fatal("could not build a test route")
	}
	parts := make([]string, len(route))
	for i, r := range route {
		parts[i] = fmt.Sprint(r)
	}
	routeStmt := "ROUTE " + strings.Join(parts, ", ") + " AGG SUM(cost)"
	exp, res, rs := runCold(t, s, routeStmt)
	if got := string(exp.Plan.Chosen.Path); got != "successor-chain" {
		t.Errorf("route chose %s", got)
	}
	if int64(exp.Plan.Chosen.Pages) != rs.DataReads {
		t.Errorf("route predicted %d pages, measured %d", exp.Plan.Chosen.Pages, rs.DataReads)
	}
	if res.Agg == nil || math.Abs(res.Agg.Value-res.Cost) > 1e-9 {
		t.Errorf("SUM(cost) = %+v, route cost %v", res.Agg, res.Cost)
	}

	pathStmt := fmt.Sprintf("PATH %d TO %d", route[0], route[len(route)-1])
	expP, resP, rsP := runCold(t, s, pathStmt)
	if got := string(expP.Plan.Chosen.Path); got != "successor-expansion" {
		t.Errorf("path chose %s", got)
	}
	if int64(expP.Plan.Chosen.Pages) != rsP.DataReads {
		t.Errorf("path predicted %d pages, measured %d", expP.Plan.Chosen.Pages, rsP.DataReads)
	}
	if resP.Cost <= 0 || resP.Cost > res.Cost+1e-9 {
		t.Errorf("shortest cost %v vs route cost %v", resP.Cost, res.Cost)
	}
}

func TestQueryErrorsAndSentinels(t *testing.T) {
	s, _ := qlStore(t)
	ctx := context.Background()
	if _, err := s.Query(ctx, "SELECT * FROM t"); !errors.Is(err, ErrQueryParse) {
		t.Errorf("parse error = %v, want ErrQueryParse", err)
	}
	if _, err := s.Query(ctx, "NEIGHBORS 1 DEPTH 1 AGG SUM(nodes)"); !errors.Is(err, ErrQueryUnsupported) {
		t.Errorf("unsupported agg = %v, want ErrQueryUnsupported", err)
	}
	if _, err := s.Query(ctx, "FIND 4000000000"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing node = %v, want ErrNotFound", err)
	}
	for _, err := range []error{ErrQueryParse, ErrQueryUnsupported, ErrNoPath, ErrInvalidTour} {
		if !IsQueryError(err) {
			t.Errorf("IsQueryError(%v) = false", err)
		}
	}
	if IsQueryError(ErrNotFound) {
		t.Error("IsQueryError(ErrNotFound) = true")
	}
}

func TestQueryPlainView(t *testing.T) {
	s, g := qlStore(t)
	res, err := s.Plain().Query(fmt.Sprintf("FIND %d", g.NodeIDs()[0]))
	if err != nil || res.Count != 1 {
		t.Fatalf("Plain().Query = %+v, %v", res, err)
	}
}

func TestQueryCatalogInvalidation(t *testing.T) {
	s, g := qlStore(t)
	ctx := context.Background()
	exp, err := s.Query(ctx, "EXPLAIN FIND 1")
	if err != nil {
		t.Fatal(err)
	}
	before := exp.Plan.Stats.Nodes
	if before != g.NumNodes() {
		t.Fatalf("catalog sees %d nodes, want %d", before, g.NumNodes())
	}
	// Delete a leaf-ish node; the next plan must be costed against the
	// mutated file.
	victim := g.NodeIDs()[len(g.NodeIDs())-1]
	if err := s.Delete(victim, FirstOrder); err != nil {
		t.Fatal(err)
	}
	exp, err = s.Query(ctx, "EXPLAIN FIND 1")
	if err != nil {
		t.Fatal(err)
	}
	if exp.Plan.Stats.Nodes != before-1 {
		t.Errorf("catalog not invalidated: sees %d nodes, want %d",
			exp.Plan.Stats.Nodes, before-1)
	}
}

func TestExplainStatementHelper(t *testing.T) {
	cases := map[string]string{
		"FIND 1":            "EXPLAIN FIND 1",
		"explain FIND 1":    "explain FIND 1",
		"  EXPLAIN FIND 1":  "  EXPLAIN FIND 1",
		"EXPLAINFIND 1":     "EXPLAIN EXPLAINFIND 1",
		"WINDOW (1,2,3,4)":  "EXPLAIN WINDOW (1,2,3,4)",
		"Explain\tWINDOW x": "Explain\tWINDOW x",
	}
	for in, want := range cases {
		if got := ExplainStatement(in); got != want {
			t.Errorf("ExplainStatement(%q) = %q, want %q", in, got, want)
		}
	}
}
