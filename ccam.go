// Package ccam is a connectivity-clustered access method for aggregate
// queries on transportation networks, reproducing Shekhar and Liu,
// "CCAM: A Connectivity-Clustered Access Method for Aggregate Queries
// on Transportation Networks" (ICDE 1995).
//
// A CCAM store keeps the nodes of a general network (e.g. a road map)
// in disk pages clustered by connectivity: the nodes of the network are
// assigned to pages via graph partitioning so that a pair of connected
// nodes usually shares a page (a high Connectivity Residue Ratio). That
// makes the operations behind aggregate network queries — Find,
// Get-A-successor, Get-successors and route evaluation — cheap in data
// page accesses, and Insert/Delete maintain the clustering through
// incremental reorganization policies.
//
// # Quick start
//
//	net := ccam.NewNetwork()
//	net.AddNode(ccam.Node{ID: 1, Pos: ccam.Point{X: 0, Y: 0}})
//	net.AddNode(ccam.Node{ID: 2, Pos: ccam.Point{X: 1, Y: 0}})
//	net.AddEdge(ccam.Edge{From: 1, To: 2, Cost: 2.5, Weight: 1})
//
//	store, err := ccam.Open(ccam.Options{PageSize: 2048})
//	...
//	err = store.Build(net)
//	rec, err := store.Find(ctx, 1)
//	agg, err := store.EvaluateRoute(ctx, ccam.Route{1, 2})
//
// Queries are context-first; callers without a context can use the
// ctx-less view: store.Plain().Find(1).
//
// Baseline access methods from the paper's evaluation (DFS-AM, BFS-AM,
// WDFS-AM and the Grid File) are available through NewBaseline for
// comparison studies; the experiment harness behind cmd/ccam-bench
// regenerates every table and figure of the paper.
package ccam

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ccam/internal/buffer"
	iccam "ccam/internal/ccam"
	"ccam/internal/geom"
	"ccam/internal/graph"
	"ccam/internal/gridfile"
	"ccam/internal/metrics"
	"ccam/internal/netfile"
	"ccam/internal/partition"
	"ccam/internal/query"
	"ccam/internal/query/plan"
	"ccam/internal/storage"
	"ccam/internal/topo"
)

// Core re-exported types. The network model lives in internal/graph,
// records and operations in internal/netfile; these aliases make the
// root package self-sufficient for library users.
type (
	// NodeID identifies a network node.
	NodeID = graph.NodeID
	// Node is a network node: id, planar position, attribute payload.
	Node = graph.Node
	// Edge is a directed edge with traversal cost and access weight.
	Edge = graph.Edge
	// Network is an in-memory directed network with successor- and
	// predecessor-lists.
	Network = graph.Network
	// Route is a node sequence connected by directed edges.
	Route = graph.Route
	// Point is a position in the plane.
	Point = geom.Point
	// Rect is an axis-aligned rectangle (for range queries).
	Rect = geom.Rect
	// Record is the stored form of a node: node data, successor-list,
	// predecessor-list.
	Record = netfile.Record
	// SuccEntry is one successor-list element.
	SuccEntry = netfile.SuccEntry
	// InsertOp describes a node insertion with its edges.
	InsertOp = netfile.InsertOp
	// RouteAggregate is the result of a route evaluation query.
	RouteAggregate = netfile.RouteAggregate
	// Policy selects the reorganization behaviour of maintenance
	// operations (paper Table 1).
	Policy = netfile.Policy
	// IOStats counts physical page transfers.
	IOStats = storage.Stats
	// Placement maps nodes to their data pages.
	Placement = graph.Placement
)

// Reorganization policies, in increasing order of overhead.
const (
	// FirstOrder avoids or delays reorganization (only underflow and
	// overflow are handled).
	FirstOrder = netfile.FirstOrder
	// SecondOrder reorganizes the pages the update touches anyway.
	SecondOrder = netfile.SecondOrder
	// HigherOrder also reorganizes the PAG-neighbor pages.
	HigherOrder = netfile.HigherOrder
	// Lazy behaves first-order per update but reorganizes a page's
	// neighborhood after enough updates accumulate on it (paper §2.4).
	Lazy = netfile.Lazy
)

// Common sentinel errors.
var (
	// ErrNotFound reports a missing node.
	ErrNotFound = netfile.ErrNotFound
	// ErrDuplicate reports an insert of an existing node.
	ErrDuplicate = netfile.ErrDuplicate
	// ErrNodeExists is ErrDuplicate under its API-redesign name: an
	// insert (direct or batched) of a node that is already stored.
	// errors.Is matches either spelling.
	ErrNodeExists = netfile.ErrDuplicate
	// ErrClosed reports an operation on a store after Close, or on a
	// store poisoned by a mid-batch apply failure (reopen it with
	// OpenPath to recover the committed prefix).
	ErrClosed = errors.New("ccam: store is closed")
	// ErrOverloaded reports a request shed by admission control: the
	// serving layer (cmd/ccam-serve) was already running its maximum
	// number of in-flight requests and refused this one instead of
	// queueing it. The request did not run; retrying after a backoff is
	// safe.
	ErrOverloaded = errors.New("ccam: server overloaded")
	// ErrEdgeExists reports an insert of an edge that is already
	// stored.
	ErrEdgeExists = graph.ErrEdgeExists
	// ErrEdgeMissing reports an edge operation on an absent edge.
	ErrEdgeMissing = graph.ErrEdgeMissing
	// ErrNoPath reports an unreachable shortest-path destination.
	ErrNoPath = query.ErrNoPath
	// ErrChecksum reports a page (or file header) whose stored CRC32
	// does not match its contents — a torn write, bit rot or a
	// misdirected write in a file-backed store. It surfaces wrapped
	// from any operation that touches the damaged page; ccam-fsck
	// locates and (with -repair) quarantines the page.
	ErrChecksum = storage.ErrChecksum
	// ErrCorruptedPage reports a page whose structure (slotted-page
	// header, slot directory, free-list chain) is invalid.
	ErrCorruptedPage = storage.ErrCorruptedPage
)

// NewNetwork returns an empty in-memory network.
func NewNetwork() *Network { return graph.NewNetwork() }

// NewRect returns the rectangle spanning two corner points.
func NewRect(a, b Point) Rect { return geom.NewRect(a, b) }

// InsertOpFromNode builds the InsertOp that re-inserts node id of g
// with all its current edges.
func InsertOpFromNode(g *Network, id NodeID) (*InsertOp, error) {
	return netfile.InsertOpFromNode(g, id)
}

// CRR returns the Connectivity Residue Ratio of a placement: the
// fraction of edges whose endpoints share a data page.
func CRR(g *Network, p Placement) float64 { return graph.CRR(g, p) }

// WCRR returns the Weighted Connectivity Residue Ratio of a placement.
func WCRR(g *Network, p Placement) float64 { return graph.WCRR(g, p) }

// Options configures a CCAM store.
type Options struct {
	// PageSize is the disk block size in bytes (default 2048).
	PageSize int
	// PoolPages is the buffer pool capacity in pages (default 32).
	PoolPages int
	// PoolShards splits the buffer pool into independently latched
	// shards, so concurrent queries on different pages stop contending
	// on one pool latch. Zero or one keeps the single-latch pool (the
	// paper's serial cost model); AutoPoolShards() picks a value from
	// the machine's parallelism. Per-operation page-access counts are
	// identical at every shard count.
	PoolShards int
	// Prefetch enables connectivity-aware prefetching: on a data-page
	// miss during route or successor evaluation the store
	// asynchronously faults in the PAG-adjacent pages recorded at
	// build time, so the traversal's next hop is usually buffered.
	// Speculative reads are metered separately and never alter the
	// demand hit/miss counters.
	Prefetch bool
	// PrefetchWorkers sizes the prefetcher's worker pool (0 selects
	// the default). Ignored unless Prefetch is set.
	PrefetchWorkers int
	// Dynamic selects the incremental create (CCAM-D): Build loads the
	// network as a sequence of Add-node operations with incremental
	// reclustering, which handles networks too large to partition in
	// one pass. The default is the static create (CCAM-S).
	Dynamic bool
	// Seed drives the partitioner's randomized restarts; equal seeds
	// give identical files.
	Seed int64
	// Path, when non-empty, stores data pages in an os.File-backed page
	// store at that location instead of in memory.
	Path string
	// Spatial selects the secondary spatial index: SpatialZOrder (the
	// paper's Z-ordered B+-tree, the default) or SpatialRTree.
	Spatial SpatialIndexKind
	// Parallelism bounds the worker pool of the batch queries
	// (FindBatch, EvaluateRoutes). Zero means runtime.GOMAXPROCS(0).
	Parallelism int
	// BuildWorkers bounds the worker pool of the static create's
	// clustering recursion. Zero means runtime.GOMAXPROCS(0); one runs
	// serially. The placement depends only on Seed, never on the
	// worker count.
	BuildWorkers int
	// ReadLatency, when positive, charges that much simulated
	// wall-clock time per physical data-page read of the in-memory
	// store, reproducing the paper's disk-resident regime for
	// throughput experiments (page-access counts are unaffected).
	// Ignored when Path is set.
	ReadLatency time.Duration
	// SyncLatency, when positive, charges that much additional
	// simulated wall-clock time per stable-storage sync — every WAL
	// fsync and every data-file sync — the durable-path counterpart
	// of ReadLatency: it reproduces the paper's disk-resident regime
	// on hardware whose local fsync costs only tens of microseconds.
	// Fsync counts, group-commit accounting and page-access counts
	// are unaffected. Ignored without Path.
	SyncLatency time.Duration
	// Metrics enables the observability registry: per-operation
	// counters and latency histograms, per-class page-access counters
	// (B+-tree index vs CCAM data pages), buffer hit/miss latencies and
	// CRR/WCRR gauges refreshed after every mutation. Disabled by
	// default; a disabled store pays one nil check per operation and
	// allocates nothing for instrumentation.
	Metrics bool
	// TraceCapacity, when positive, enables operation tracing: the
	// store keeps the most recent TraceCapacity operation traces, each
	// recording per-span timing of index descent, buffer fetch and
	// physical read. Independent of Metrics.
	TraceCapacity int
	// WAL enables the write-ahead log: every mutation (direct or
	// batched through Apply) is logged before it touches a data page,
	// and OpenPath replays the committed tail after a crash. Requires
	// Path (the log lives in a <Path>.wal directory beside the data
	// file).
	WAL bool
	// SyncPolicy selects when WAL commits are forced to stable
	// storage: SyncGroupCommit (the default) coalesces concurrent
	// committers into one fsync, SyncEveryCommit fsyncs per commit,
	// SyncNone leaves durability to the OS. Ignored without WAL.
	SyncPolicy SyncPolicy
	// CheckpointBytes bounds the WAL between checkpoints: after a
	// commit that leaves more than this many bytes in the log, the
	// store checkpoints (flushes dirty pages and prunes the log)
	// before acknowledging. Zero selects the 4 MiB default; the log
	// always retains at least its last complete checkpoint.
	CheckpointBytes int64
	// ExclusiveReads restores the pre-MVCC concurrency regime: every
	// query takes the store's reader-writer lock and therefore waits
	// behind a running Apply (including its in-lock checkpoints). The
	// default — snapshot reads — serves queries from an LSN-pinned
	// consistent view that a concurrent Apply never blocks. Exclusive
	// mode exists for A/B measurement (cmd/ccam-bench -exp mixed) and
	// as an escape hatch; results are identical either way, only
	// tail latency under write load differs.
	ExclusiveReads bool
	// BackgroundReorg starts the incremental reorganizer: a goroutine
	// that watches the CRR gauge decay under updates and re-clusters
	// the worst PAG neighborhoods a few pages at a time, through the
	// WAL and the version layer, so readers keep their snapshots and
	// never observe a stop-the-world rebuild. Requires Metrics (the
	// trigger reads the live CRR gauge); only the CCAM access methods
	// support it.
	BackgroundReorg bool
	// ReorgInterval is the reorganizer's polling period (default 2s).
	ReorgInterval time.Duration
	// ReorgMaxPages bounds the pages one reorganization round may
	// re-cluster (default 16); small rounds keep the write lock short.
	ReorgMaxPages int
	// ReorgTriggerDrop is the CRR decay (from its high-water mark)
	// that triggers a round (default 0.02).
	ReorgTriggerDrop float64
	// applyFaultHook, when non-nil, is called before each batch op is
	// applied (with the op's index) and aborts the batch when it
	// returns an error. Test-only: it simulates a mid-batch failure.
	applyFaultHook func(opIndex int) error
}

// AutoPoolShards returns a buffer-pool shard count sized to the
// machine's parallelism for a pool of poolPages pages: roughly one
// shard per available CPU, but never so many that a shard drops below a
// useful handful of frames. Use it as Options.PoolShards for serving
// workloads; experiments reproducing the paper's serial cost model
// should keep the default single shard.
func AutoPoolShards(poolPages int) int { return buffer.AutoShards(poolPages) }

// SyncPolicy selects when WAL commits are forced to stable storage.
type SyncPolicy = storage.SyncPolicy

// WAL sync policies.
const (
	// SyncGroupCommit (the default) coalesces concurrent committers
	// into one fsync.
	SyncGroupCommit = storage.SyncGroupCommit
	// SyncEveryCommit issues one fsync per commit, serialized.
	SyncEveryCommit = storage.SyncEveryCommit
	// SyncNone never fsyncs on commit; a crash can lose acknowledged
	// commits (but never corrupts the store).
	SyncNone = storage.SyncNone
)

// SpatialIndexKind selects the secondary spatial index structure.
type SpatialIndexKind = netfile.SpatialKind

// Spatial index kinds.
const (
	// SpatialZOrder is the paper's Z-ordered B+-tree.
	SpatialZOrder = netfile.SpatialZOrder
	// SpatialRTree is Guttman's R-tree.
	SpatialRTree = netfile.SpatialRTree
)

// Store is a CCAM file: the paper's access method behind a convenience
// facade. All methods are safe for concurrent use. Queries (Find,
// GetASuccessor, GetSuccessors, EvaluateRoute, RangeQuery, Has,
// FindBatch, EvaluateRoutes and Query) run against an LSN-pinned
// snapshot: each pins the newest committed mutation batch and reads
// page versions and placements as of that batch, so a running Apply —
// including its WAL group-commit fsync and in-lock checkpoints — never
// blocks them and never leaks a half-applied batch into their view.
// The remaining operations (Nearest, the graph searches, Scan,
// EvaluateRouteUnit and the read-only accessors) share a reader-writer
// lock with the mutators: they run in parallel with each other and
// with snapshot queries, while Build, Insert, Delete, InsertEdge,
// DeleteEdge, SetEdgeCost, Apply, ResetIO, Flush and Close are
// exclusive among themselves. This departs from the paper's
// one-query-at-a-time cost model on purpose — route-evaluation
// workloads are read-dominated — without changing any per-operation
// page-access count. Options.ExclusiveReads restores the old
// everything-behind-one-lock regime for comparison runs.
type Store struct {
	// mu serializes mutators (Build, Apply, Flush, Close, ResetIO) and
	// the non-snapshot read operations. structMu guards structural
	// changes — Build replacing the file wholesale, Close, ResetIO —
	// against snapshot readers: snapshot reads hold structMu.RLock
	// only, so Apply (which takes only mu) never blocks them. Lock
	// order: structMu before mu.
	structMu    sync.RWMutex
	mu          sync.RWMutex
	m           netfile.AccessMethod
	fs          *storage.FileStore
	parallelism int
	// exclusiveReads routes every query through mu instead of a
	// snapshot (Options.ExclusiveReads).
	exclusiveReads bool
	// obs is non-nil only when Options.Metrics was set; every operation
	// branches on it before paying any instrumentation cost.
	obs    *observability
	tracer *metrics.Tracer
	// lastIO preserves the final I/O snapshot across Close, so IO()
	// keeps answering on a closed store.
	lastIO IOStats
	// closed is written under both structMu and mu, so holding either
	// read lock is enough to observe it.
	closed bool
	// wal is the store's write-ahead log (nil without Options.WAL).
	// It is attached to the data file after Build/OpenPath, switching
	// the buffer pool to no-steal and deferring page frees to the next
	// checkpoint.
	wal             *storage.WAL
	checkpointBytes int64
	// failed poisons the store after a mid-batch apply failure: the
	// in-memory state no longer matches any committed WAL prefix, so
	// every subsequent operation fails with this error until the store
	// is reopened (recovery restores the last committed state). It is
	// an atomic pointer because snapshot readers check it without
	// holding mu while Apply sets it under mu.
	failed atomic.Pointer[error]
	// replayedBatches/replayedMutations count what OpenPath recovered
	// from the WAL tail.
	replayedBatches   int
	replayedMutations int
	applyFaultHook    func(int) error
	// reorg is the background incremental reorganizer (nil without
	// Options.BackgroundReorg). Close halts it before locking.
	reorg *reorganizer
	// cat caches the CCAM-QL planner's catalog (statistics, placement
	// and adjacency mirrors); it is built lazily by the first Query
	// from a pinned snapshot and then kept current incrementally:
	// every committed batch applies its op and placement deltas under
	// catMu, guarded by catLSN (the commit LSN the catalog reflects)
	// so a batch that committed before the catalog was built is never
	// applied twice. Build drops it. catMu guards cat and catLSN
	// independently of mu so a lazy build never blocks, and is never
	// torn by, a concurrent Apply; lock order is mu before catMu.
	catMu  sync.Mutex
	cat    *plan.Catalog
	catLSN uint64
}

// failedErr returns the poison error, or nil on a healthy store.
func (s *Store) failedErr() error {
	if p := s.failed.Load(); p != nil {
		return *p
	}
	return nil
}

// poison marks the store failed; the first error wins.
func (s *Store) poison(err error) { s.failed.CompareAndSwap(nil, &err) }

// Name identifies the underlying access method ("ccam-s", "ccam-d",
// "dfs-am", "bfs-am", "wdfs-am", "grid-file").
func (s *Store) Name() string { return s.m.Name() }

// Open creates a new, empty CCAM store.
func Open(opts Options) (*Store, error) {
	if opts.PageSize == 0 {
		opts.PageSize = 2048
	}
	if opts.WAL && opts.Path == "" {
		return nil, errors.New("ccam: Options.WAL requires Options.Path")
	}
	if opts.BackgroundReorg && !opts.Metrics {
		return nil, errors.New("ccam: Options.BackgroundReorg requires Options.Metrics (the trigger reads the CRR gauge)")
	}
	cfg := iccam.Config{
		PageSize:        opts.PageSize,
		PoolPages:       opts.PoolPages,
		PoolShards:      opts.PoolShards,
		Prefetch:        opts.Prefetch,
		PrefetchWorkers: opts.PrefetchWorkers,
		Seed:            opts.Seed,
		BuildWorkers:    opts.BuildWorkers,
		Dynamic:         opts.Dynamic,
		Spatial:         opts.Spatial,
		ReadLatency:     opts.ReadLatency,
	}
	var fs *storage.FileStore
	if opts.Path != "" {
		// File-backed pages carry a CRC32 trailer verified on every
		// physical read, so on-disk corruption surfaces as ErrChecksum
		// instead of silently wrong records. The on-disk page size is
		// opts.PageSize; the trailer comes out of each page's payload.
		var extra uint32
		if opts.WAL {
			extra = storage.FlagWAL
		}
		cs, inner, err := storage.CreateCheckedFileFlags(opts.Path, opts.PageSize, extra)
		if err != nil {
			return nil, err
		}
		fs = inner
		if opts.SyncLatency > 0 {
			fs.SetSyncLatency(opts.SyncLatency)
		}
		cfg.Store = cs
		cfg.PageSize = cs.PageSize()
	}
	var obs *observability
	var tracer *metrics.Tracer
	if opts.TraceCapacity > 0 {
		tracer = metrics.NewTracer(opts.TraceCapacity)
		cfg.Tracer = tracer
	}
	if opts.Metrics {
		obs = newObservability(metrics.NewRegistry(), tracer)
		cfg.Metrics = obs.reg
	}
	m, err := iccam.New(cfg)
	if err != nil {
		if fs != nil {
			fs.Close()
		}
		return nil, err
	}
	s := &Store{
		m: m, fs: fs, parallelism: opts.Parallelism, obs: obs, tracer: tracer,
		checkpointBytes: opts.CheckpointBytes, applyFaultHook: opts.applyFaultHook,
		exclusiveReads: opts.ExclusiveReads,
	}
	if s.checkpointBytes == 0 {
		s.checkpointBytes = defaultCheckpointBytes
	}
	if opts.WAL {
		wal, err := storage.CreateWAL(storage.WALDir(opts.Path), opts.SyncPolicy, 0)
		if err != nil {
			fs.Close()
			return nil, err
		}
		s.wal = wal
		if opts.SyncLatency > 0 {
			wal.SetSyncLatency(opts.SyncLatency)
		}
		if obs != nil {
			wal.Instrument(obs.walInstrumentation())
		}
	}
	if opts.BackgroundReorg {
		if err := s.startReorganizer(opts); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// Build loads network g into the store (the paper's Create()),
// replacing any previous contents. With a WAL, the log is reset first
// and a checkpoint is taken after the load: Build itself is not
// crash-atomic (a crash mid-Build leaves neither the old nor the new
// contents recoverable), but once Build returns the loaded network is
// durable and every later Apply is.
func (s *Store) Build(g *Network) error {
	// Build replaces the file wholesale and resets the version layer,
	// so it excludes snapshot readers too (structMu), not just the
	// lock-sharing operations (mu). Any Store.Snapshot the caller
	// still holds must be closed first.
	s.structMu.Lock()
	defer s.structMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.failedErr(); err != nil {
		return err
	}
	if s.reorg != nil {
		// The new contents start a fresh CRR high-water mark.
		s.reorg.resetLocked()
	}
	if s.obs == nil {
		err := s.buildLocked(g)
		if err == nil {
			s.invalidateCatalog()
		}
		return err
	}
	start := time.Now()
	err := s.buildLocked(g)
	om := s.obs.build
	om.count.Inc()
	if err != nil {
		om.errs.Inc()
		return err
	}
	om.latency.ObserveSince(start)
	s.invalidateCatalog()
	s.obs.mirrorFromNetwork(g)
	s.obs.refreshGauges(s.m.File())
	return nil
}

func (s *Store) buildLocked(g *Network) error {
	if s.wal != nil {
		// Build replaces the file wholesale; stale log records must not
		// be replayed over the new contents, so the log restarts empty
		// (at a monotonically advanced LSN) before any page is written.
		if err := s.wal.Reset(); err != nil {
			return err
		}
	}
	if err := s.m.Build(g); err != nil {
		return err
	}
	if s.wal != nil {
		f := s.m.File()
		f.AttachWAL(s.wal, s.fs)
		if err := f.Checkpoint(); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) file() (*netfile.File, error) {
	if s.closed {
		return nil, ErrClosed
	}
	if err := s.failedErr(); err != nil {
		return nil, err
	}
	f := s.m.File()
	if f == nil {
		return nil, fmt.Errorf("ccam: store is empty; call Build first")
	}
	return f, nil
}

// readView is one query's pinned read path: the file (for metrics
// attribution, counters and the exclusive-reads mode) plus the
// LSN-pinned view — unpinned under Options.ExclusiveReads, where the
// query instead holds the store's reader-writer lock. It is a plain
// value over netfile's value-form View, so opening, dispatching
// through and releasing a read path allocates nothing.
type readView struct {
	s      *Store
	f      *netfile.File
	view   netfile.View
	pinned bool
}

// readView opens the read path for one query. In the default snapshot
// mode it pins the newest committed LSN under structMu.RLock — which a
// running Apply does not hold, so the reader starts immediately. With
// Options.ExclusiveReads it degenerates to the shared lock and an
// unpinned view. release must be called exactly once.
func (s *Store) readView() (readView, error) {
	if s.exclusiveReads {
		s.mu.RLock()
		f, err := s.file()
		if err != nil {
			s.mu.RUnlock()
			return readView{}, err
		}
		return readView{s: s, f: f}, nil
	}
	s.structMu.RLock()
	f, err := s.file()
	if err != nil {
		s.structMu.RUnlock()
		return readView{}, err
	}
	return readView{s: s, f: f, view: f.PinView(), pinned: true}, nil
}

func (v readView) release() {
	if v.pinned {
		v.view.Unpin()
		v.s.structMu.RUnlock()
		return
	}
	v.s.mu.RUnlock()
}

// The dispatch methods below branch per call instead of binding a
// method value once: a method value allocates its receiver binding,
// and the read path is kept allocation-free beyond the underlying
// operation.

func (v readView) findCtx(ctx context.Context, id NodeID) (*Record, error) {
	if v.pinned {
		return v.view.FindCtx(ctx, id)
	}
	return v.f.FindCtx(ctx, id)
}

func (v readView) find(id NodeID) (*Record, error) {
	if v.pinned {
		return v.view.Find(id)
	}
	return v.f.Find(id)
}

func (v readView) getASuccessor(cur *Record, succ NodeID) (*Record, error) {
	if v.pinned {
		return v.view.GetASuccessor(cur, succ)
	}
	return v.f.GetASuccessor(cur, succ)
}

func (v readView) getSuccessorsCtx(ctx context.Context, id NodeID) ([]*Record, error) {
	if v.pinned {
		return v.view.GetSuccessorsCtx(ctx, id)
	}
	return v.f.GetSuccessorsCtx(ctx, id)
}

func (v readView) evaluateRouteCtx(ctx context.Context, route Route) (RouteAggregate, error) {
	if v.pinned {
		return v.view.EvaluateRouteCtx(ctx, route)
	}
	return v.f.EvaluateRouteCtx(ctx, route)
}

func (v readView) evaluateRoute(route Route) (RouteAggregate, error) {
	if v.pinned {
		return v.view.EvaluateRoute(route)
	}
	return v.f.EvaluateRoute(route)
}

func (v readView) rangeQueryCtx(ctx context.Context, rect Rect) ([]*Record, error) {
	if v.pinned {
		return v.view.RangeQueryCtx(ctx, rect)
	}
	return v.f.RangeQueryCtx(ctx, rect)
}

// Snapshot pins the newest committed mutation batch and returns a
// read-only view of the store as of that batch: a reader holding it
// sees neither later Apply commits nor background reorganization, no
// matter how long it lives, and never waits on them. Close must be
// called exactly once to release the pinned page versions. The
// snapshot must be closed before Build, ResetIO or Close; it fails
// once the store is poisoned, closed or rebuilt. Returns an error on
// an unbuilt or closed store, or with Options.ExclusiveReads (which
// disables the version layer's read path).
func (s *Store) Snapshot() (*Snapshot, error) {
	if s.exclusiveReads {
		return nil, errors.New("ccam: snapshots are disabled under Options.ExclusiveReads")
	}
	s.structMu.RLock()
	defer s.structMu.RUnlock()
	f, err := s.file()
	if err != nil {
		return nil, err
	}
	return f.Snapshot(), nil
}

// Snapshot is an LSN-consistent read-only view of a store, pinned by
// Store.Snapshot. See netfile.Snapshot for the read operations.
type Snapshot = netfile.Snapshot

// Find retrieves the record of a node. The context is checked before
// the record fetch, so canceling it (or exceeding its deadline) stops
// the operation early.
func (s *Store) Find(ctx context.Context, id NodeID) (*Record, error) {
	v, err := s.readView()
	if err != nil {
		return nil, err
	}
	defer v.release()
	if s.obs != nil {
		sn := s.obs.beginOpCtx(ctx, s.obs.find, v.f)
		rec, err := v.findCtx(ctx, id)
		sn.end(err)
		return rec, err
	}
	return v.findCtx(ctx, id)
}

// GetASuccessor retrieves the record of succ, a successor of cur; the
// buffered page containing cur is searched first. The context is
// checked before the fetch.
func (s *Store) GetASuccessor(ctx context.Context, cur *Record, succ NodeID) (*Record, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	v, err := s.readView()
	if err != nil {
		return nil, err
	}
	defer v.release()
	if s.obs != nil {
		sn := s.obs.beginOpCtx(ctx, s.obs.getASuccessor, v.f)
		rec, err := v.getASuccessor(cur, succ)
		sn.end(err)
		return rec, err
	}
	return v.getASuccessor(cur, succ)
}

// GetSuccessors retrieves the records of all successors of a node.
// The context is checked before the node's own fetch and before each
// successor fetch.
func (s *Store) GetSuccessors(ctx context.Context, id NodeID) ([]*Record, error) {
	v, err := s.readView()
	if err != nil {
		return nil, err
	}
	defer v.release()
	if s.obs != nil {
		sn := s.obs.beginOpCtx(ctx, s.obs.getSuccessors, v.f)
		recs, err := v.getSuccessorsCtx(ctx, id)
		sn.end(err)
		return recs, err
	}
	return v.getSuccessorsCtx(ctx, id)
}

// EvaluateRoute computes the aggregate property of a route as a Find
// followed by Get-A-successor operations. The context is checked
// before each hop's record fetch, so canceling it stops a long route
// without paying for the remaining page reads.
func (s *Store) EvaluateRoute(ctx context.Context, route Route) (RouteAggregate, error) {
	v, err := s.readView()
	if err != nil {
		return RouteAggregate{}, err
	}
	defer v.release()
	if s.obs != nil {
		sn := s.obs.beginOpCtx(ctx, s.obs.evaluateRoute, v.f)
		agg, err := v.evaluateRouteCtx(ctx, route)
		sn.end(err)
		return agg, err
	}
	return v.evaluateRouteCtx(ctx, route)
}

// RangeQuery returns all records whose positions lie inside rect, via
// the Z-ordered secondary index. The context is checked before each
// candidate record fetch, so canceling it stops the index scan without
// paying for the remaining page reads.
func (s *Store) RangeQuery(ctx context.Context, rect Rect) ([]*Record, error) {
	v, err := s.readView()
	if err != nil {
		return nil, err
	}
	defer v.release()
	if s.obs != nil {
		sn := s.obs.beginOpCtx(ctx, s.obs.rangeQuery, v.f)
		recs, err := v.rangeQueryCtx(ctx, rect)
		sn.end(err)
		return recs, err
	}
	return v.rangeQueryCtx(ctx, rect)
}

// Insert adds a new node with its edges under the given policy. It is
// a one-op batch: with a WAL the insert is logged and group-committed
// like any Apply.
func (s *Store) Insert(op *InsertOp, policy Policy) error {
	return s.Apply(context.Background(), new(Batch).Insert(op, policy))
}

// Delete removes a node and its incident edges under the given policy
// (a one-op batch).
func (s *Store) Delete(id NodeID, policy Policy) error {
	return s.Apply(context.Background(), new(Batch).Delete(id, policy))
}

// InsertEdge adds a directed edge between stored nodes (a one-op
// batch).
func (s *Store) InsertEdge(from, to NodeID, cost float32, policy Policy) error {
	return s.Apply(context.Background(), new(Batch).InsertEdge(from, to, cost, policy))
}

// DeleteEdge removes a directed edge (a one-op batch).
func (s *Store) DeleteEdge(from, to NodeID, policy Policy) error {
	return s.Apply(context.Background(), new(Batch).DeleteEdge(from, to, policy))
}

// Has reports whether a node is stored. Unlike Contains, it surfaces
// real failures: an unbuilt store or an index error comes back as a
// non-nil error instead of being conflated with "absent". The context
// is checked before the index probe.
func (s *Store) Has(ctx context.Context, id NodeID) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	v, err := s.readView()
	if err != nil {
		return false, err
	}
	defer v.release()
	if v.pinned {
		return v.view.Has(id), nil
	}
	return v.f.HasRecord(id)
}

// Contains reports whether a node is stored. It is a convenience
// wrapper around Has that treats every failure as "not stored".
func (s *Store) Contains(id NodeID) bool {
	ok, err := s.Has(context.Background(), id)
	return err == nil && ok
}

// Len returns the number of stored node records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.file()
	if err != nil {
		return 0
	}
	return f.NumNodes()
}

// NumPages returns the number of data pages in the file.
func (s *Store) NumPages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.file()
	if err != nil {
		return 0
	}
	return f.NumPages()
}

// Placement returns the current node → data page assignment.
func (s *Store) Placement() Placement {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.file()
	if err != nil {
		return Placement{}
	}
	return f.Placement()
}

// CRR measures the store's Connectivity Residue Ratio against network
// g.
func (s *Store) CRR(g *Network) float64 { return CRR(g, s.Placement()) }

// WCRR measures the store's Weighted Connectivity Residue Ratio
// against network g.
func (s *Store) WCRR(g *Network) float64 { return WCRR(g, s.Placement()) }

// IO returns the physical data-page I/O counters. The snapshot is
// consistent under concurrent readers: every counter is an atomic
// load, so no field is ever torn mid-increment. On a closed store it
// returns the last snapshot, taken at Close().
func (s *Store) IO() IOStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return s.lastIO
	}
	f, err := s.file()
	if err != nil {
		return IOStats{}
	}
	return f.DataIO()
}

// ResetIO empties the buffer pool and zeroes the I/O counters, so the
// next operation is measured cold.
func (s *Store) ResetIO() error {
	// Emptying the pool drops version chains too, so snapshot readers
	// are excluded for the duration (structMu), like Build.
	s.structMu.Lock()
	defer s.structMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := s.file()
	if err != nil {
		return err
	}
	return f.ResetIO()
}

// Flush writes all buffered dirty pages to the underlying store, and
// syncs the page file when the store is file-backed. With a WAL this
// is a checkpoint: dirty pages are imaged into the log, flushed, and
// the log is pruned to its last complete checkpoint.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := s.file()
	if err != nil {
		return err
	}
	if f.WAL() != nil {
		return f.Checkpoint()
	}
	if err := f.Flush(); err != nil {
		return err
	}
	if s.fs != nil {
		return s.fs.Sync()
	}
	return nil
}

// Checkpoint forces a WAL checkpoint: dirty pages are imaged into the
// log, flushed to the data file, deferred page frees are executed and
// the log is pruned. On a store without a WAL it is Flush.
func (s *Store) Checkpoint() error { return s.Flush() }

// Close flushes (checkpoints, with a WAL) and releases the store. The
// I/O counters are snapshotted first, so IO() keeps answering
// afterwards. A store poisoned by a mid-batch apply failure closes
// without flushing: its memory state is not trustworthy, and the next
// OpenPath recovers the last committed state from the log.
func (s *Store) Close() error {
	// Halt the background reorganizer before locking: its rounds take
	// mu, so halting under the lock would deadlock.
	if s.reorg != nil {
		s.reorg.halt()
	}
	s.structMu.Lock()
	defer s.structMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if f := s.m.File(); f != nil {
		if s.failedErr() == nil {
			if f.WAL() != nil {
				if err := f.Checkpoint(); err != nil {
					return err
				}
			} else if err := f.Flush(); err != nil {
				return err
			}
		}
		s.lastIO = f.DataIO()
	}
	s.closed = true
	var firstErr error
	if s.wal != nil {
		if err := s.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.fs != nil {
		if err := s.fs.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// BaselineKind names a comparison access method from the paper's
// evaluation.
type BaselineKind string

// Baseline access methods.
const (
	// DFSAM orders nodes by depth-first traversal.
	DFSAM BaselineKind = "dfs-am"
	// BFSAM orders nodes by breadth-first traversal.
	BFSAM BaselineKind = "bfs-am"
	// WDFSAM orders nodes by weight-guided depth-first traversal.
	WDFSAM BaselineKind = "wdfs-am"
	// GridFile clusters nodes by spatial proximity.
	GridFile BaselineKind = "grid-file"
)

// NewBaseline constructs one of the paper's comparison access methods
// behind the same Store facade as CCAM itself, so baselines and CCAM
// share one API surface — queries, batch queries, transactional Apply,
// IO() — and benchmark code needs no per-method branching. Baselines
// do not support a WAL.
func NewBaseline(kind BaselineKind, opts Options) (*Store, error) {
	if opts.PageSize == 0 {
		opts.PageSize = 2048
	}
	if opts.WAL {
		return nil, fmt.Errorf("ccam: baseline %q does not support a WAL", kind)
	}
	if opts.BackgroundReorg {
		return nil, fmt.Errorf("ccam: baseline %q does not support background reorganization", kind)
	}
	var (
		m   netfile.AccessMethod
		err error
	)
	switch kind {
	case DFSAM:
		m, err = topo.New(topo.Config{Kind: topo.DFS, PageSize: opts.PageSize, PoolPages: opts.PoolPages, Seed: opts.Seed})
	case BFSAM:
		m, err = topo.New(topo.Config{Kind: topo.BFS, PageSize: opts.PageSize, PoolPages: opts.PoolPages, Seed: opts.Seed})
	case WDFSAM:
		m, err = topo.New(topo.Config{Kind: topo.WDFS, PageSize: opts.PageSize, PoolPages: opts.PoolPages, Seed: opts.Seed})
	case GridFile:
		m, err = gridfile.New(gridfile.Config{PageSize: opts.PageSize, PoolPages: opts.PoolPages})
	default:
		return nil, fmt.Errorf("ccam: unknown baseline %q", kind)
	}
	if err != nil {
		return nil, err
	}
	return &Store{m: m, parallelism: opts.Parallelism, exclusiveReads: opts.ExclusiveReads}, nil
}

// RoadMapOpts configures the synthetic road-network generator.
type RoadMapOpts = graph.RoadMapOpts

// MinneapolisLikeOpts returns generator options matching the scale of
// the paper's test data (1077 nodes, 3045 directed edges).
func MinneapolisLikeOpts() RoadMapOpts { return graph.MinneapolisLikeOpts() }

// RoadMap generates a synthetic planar road network.
func RoadMap(opts RoadMapOpts) (*Network, error) { return graph.RoadMap(opts) }

// ReadNetworkJSON parses a network from the JSON schema written by
// Network.WriteJSON (and by cmd/netgen).
func ReadNetworkJSON(r io.Reader) (*Network, error) { return graph.ReadJSON(r) }

// RandomWalkRoutes generates count routes of exactly length nodes each
// by random walks on g, the workload of the paper's route evaluation
// experiments.
func RandomWalkRoutes(g *Network, count, length int, rng *rand.Rand) ([]Route, error) {
	return graph.RandomWalkRoutes(g, count, length, rng)
}

// ApplyRouteWeights sets each edge's access weight to the number of
// times the given routes traverse it (the paper's WCRR workload).
func ApplyRouteWeights(g *Network, routes []Route) (int, error) {
	return graph.ApplyRouteWeights(g, routes)
}

// compile-time interface checks for the facade's building blocks
var (
	_ partition.Bipartitioner = (*partition.RatioCut)(nil)
	_ netfile.AccessMethod    = (*iccam.Method)(nil)
)

// SetEdgeCost updates the stored cost (e.g. current travel time) of a
// directed edge in place (a one-op batch).
func (s *Store) SetEdgeCost(from, to NodeID, cost float32) error {
	return s.Apply(context.Background(), new(Batch).SetEdgeCost(from, to, cost))
}

// Nearest returns the k stored records closest to p by Euclidean
// distance, nearest first, through the spatial index.
func (s *Store) Nearest(p Point, k int) ([]*Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.file()
	if err != nil {
		return nil, err
	}
	if s.obs != nil {
		sn := s.obs.beginOp(s.obs.nearest, f)
		recs, err := f.Nearest(p, k)
		sn.end(err)
		return recs, err
	}
	return f.Nearest(p, k)
}

// Query results re-exported from the query layer.
type (
	// Path is a shortest-path result.
	Path = query.Path
	// TourAggregate is the result of a tour evaluation query.
	TourAggregate = query.TourAggregate
	// Allocation assigns one demand node to its nearest facility.
	Allocation = query.Allocation
)

// ShortestPath computes a cheapest path between two stored nodes with
// Dijkstra's algorithm over the file (Get-successors expansions).
func (s *Store) ShortestPath(src, dst NodeID) (Path, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.file()
	if err != nil {
		return Path{}, err
	}
	if s.obs != nil {
		sn := s.obs.beginOp(s.obs.shortestPath, f)
		p, err := query.Dijkstra(f, src, dst)
		sn.end(err)
		return p, err
	}
	return query.Dijkstra(f, src, dst)
}

// ShortestPathAStar computes a cheapest path with A*, using a
// straight-line-distance heuristic scaled by minCostPerUnit (a lower
// bound on edge cost per unit of Euclidean distance; 0 falls back to
// Dijkstra).
func (s *Store) ShortestPathAStar(src, dst NodeID, minCostPerUnit float64) (Path, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.file()
	if err != nil {
		return Path{}, err
	}
	if s.obs != nil {
		sn := s.obs.beginOp(s.obs.shortestPath, f)
		p, err := query.AStar(f, src, dst, minCostPerUnit)
		sn.end(err)
		return p, err
	}
	return query.AStar(f, src, dst, minCostPerUnit)
}

// EvaluateTour evaluates a closed tour (the route plus the edge back to
// its start).
func (s *Store) EvaluateTour(tour Route) (TourAggregate, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.file()
	if err != nil {
		return TourAggregate{}, err
	}
	if s.obs != nil {
		sn := s.obs.beginOp(s.obs.evaluateTour, f)
		agg, err := query.EvaluateTour(f, tour)
		sn.end(err)
		return agg, err
	}
	return query.EvaluateTour(f, tour)
}

// LocationAllocation allocates every reachable node to its cheapest
// facility by network distance, returning the allocations plus the
// total and maximum assignment costs.
func (s *Store) LocationAllocation(facilities []NodeID) ([]Allocation, float64, float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.file()
	if err != nil {
		return nil, 0, 0, err
	}
	if s.obs != nil {
		sn := s.obs.beginOp(s.obs.locationAllocation, f)
		allocs, total, max, err := query.LocationAllocation(f, facilities)
		sn.end(err)
		return allocs, total, max, err
	}
	return query.LocationAllocation(f, facilities)
}

// OpenPath reopens a file-backed CCAM store previously created with
// Open(Options{Path: ...}). The data pages are read back from disk —
// each page's checksum verified — and the memory-resident structures
// (indexes, free-space map) are rebuilt by one scan. PageSize in opts
// is ignored; the on-disk page size wins. A torn header, broken free
// list or corrupted page fails the open with a wrapped ErrChecksum or
// ErrCorruptedPage; ccam-fsck -repair quarantines the damage so the
// surviving records open.
//
// A store created with Options.WAL recovers here: the data file is
// first restored to its last complete checkpoint image from the log
// (every page write between checkpoints is provisional under the
// no-steal protocol, so the restore discards only uncommitted noise),
// then every batch whose commit record made it to the log is replayed
// in order. Any crash point therefore recovers to exactly the
// committed prefix — no lost and no phantom mutations. The WAL is
// detected from the data file's header flag (or the <path>.wal
// directory); Options.WAL also force-enables it on a store created
// without one.
func OpenPath(path string, opts Options) (*Store, error) {
	walDir := storage.WALDir(path)
	var walRecs []storage.WALRecord
	var ck *storage.WALCheckpoint
	haveWALDir := false
	if _, err := os.Stat(walDir); err == nil {
		haveWALDir = true
		recs, _, err := storage.ScanWALDir(walDir)
		if err != nil {
			return nil, fmt.Errorf("ccam: scan wal: %w", err)
		}
		walRecs = recs
		ck, err = storage.LastCheckpoint(recs)
		if err != nil {
			return nil, fmt.Errorf("ccam: wal checkpoint: %w", err)
		}
		if ck != nil {
			// Restore-always: rewrite the checkpointed page images, free
			// list and header over whatever partial flush a crash left.
			if err := storage.RecoverFile(path, ck); err != nil {
				return nil, fmt.Errorf("ccam: recover %s: %w", path, err)
			}
		}
	}
	st, fs, err := storage.OpenPageFile(path)
	if err != nil {
		return nil, err
	}
	if opts.SyncLatency > 0 {
		fs.SetSyncLatency(opts.SyncLatency)
	}
	wantWAL := opts.WAL || haveWALDir || fs.Flags()&storage.FlagWAL != 0
	f, err := netfile.OpenFromStoreOpts(st, netfile.Options{
		PoolPages:       opts.PoolPages,
		PoolShards:      opts.PoolShards,
		Prefetch:        opts.Prefetch,
		PrefetchWorkers: opts.PrefetchWorkers,
		Spatial:         opts.Spatial,
	})
	if err != nil {
		fs.Close()
		return nil, err
	}
	m, err := iccam.New(iccam.Config{
		PageSize:        st.PageSize(),
		PoolPages:       opts.PoolPages,
		PoolShards:      opts.PoolShards,
		Prefetch:        opts.Prefetch,
		PrefetchWorkers: opts.PrefetchWorkers,
		Seed:            opts.Seed,
		BuildWorkers:    opts.BuildWorkers,
		Dynamic:         opts.Dynamic,
		Store:           st,
	})
	if err != nil {
		fs.Close()
		return nil, err
	}
	if err := m.Attach(f); err != nil {
		fs.Close()
		return nil, err
	}
	var wal *storage.WAL
	replayedBatches, replayedMutations := 0, 0
	if wantWAL {
		// Replay the committed tail before the WAL is attached, so the
		// re-executed mutations are not logged again.
		after := uint64(0)
		if ck != nil {
			after = ck.EndLSN
		}
		replayedBatches, replayedMutations, err = replayWAL(m, f, walRecs, after)
		if err != nil {
			fs.Close()
			return nil, fmt.Errorf("ccam: wal replay: %w", err)
		}
		wal, err = storage.OpenWAL(walDir, opts.SyncPolicy, 0)
		if err != nil {
			fs.Close()
			return nil, err
		}
		if opts.SyncLatency > 0 {
			wal.SetSyncLatency(opts.SyncLatency)
		}
		if fs.Flags()&storage.FlagWAL == 0 {
			if err := fs.SetFlag(storage.FlagWAL); err != nil {
				wal.Close()
				fs.Close()
				return nil, err
			}
		}
		f.AttachWAL(wal, fs)
		// Converge: make the replayed state the new checkpoint and prune
		// the log, so the next crash recovers without re-replaying.
		if err := f.Checkpoint(); err != nil {
			wal.Close()
			fs.Close()
			return nil, err
		}
	}
	var obs *observability
	var tracer *metrics.Tracer
	if opts.TraceCapacity > 0 {
		tracer = metrics.NewTracer(opts.TraceCapacity)
	}
	if opts.Metrics {
		obs = newObservability(metrics.NewRegistry(), tracer)
		if wal != nil {
			wal.Instrument(obs.walInstrumentation())
			obs.reg.Counter("ccam_wal_replayed_batches_total").Add(int64(replayedBatches))
			obs.reg.Counter("ccam_wal_replayed_mutations_total").Add(int64(replayedMutations))
		}
	}
	if obs != nil || tracer != nil {
		var reg *metrics.Registry
		if obs != nil {
			reg = obs.reg
		}
		f.EnableMetrics(reg, tracer)
	}
	if obs != nil {
		// Rebuild the topology mirror from the stored records (weights
		// are not persisted, so edges get weight 1 and WCRR == CRR),
		// then discard the scan's I/O so counters start clean.
		var recs []*Record
		if err := f.Scan(func(rec *Record) bool { recs = append(recs, rec); return true }); err != nil {
			fs.Close()
			return nil, err
		}
		obs.mirrorFromRecords(recs)
		obs.refreshGauges(f)
	}
	if err := f.ResetIO(); err != nil {
		fs.Close()
		return nil, err
	}
	s := &Store{
		m: m, fs: fs, parallelism: opts.Parallelism, obs: obs, tracer: tracer,
		wal: wal, checkpointBytes: opts.CheckpointBytes, applyFaultHook: opts.applyFaultHook,
		replayedBatches: replayedBatches, replayedMutations: replayedMutations,
		exclusiveReads: opts.ExclusiveReads,
	}
	if s.checkpointBytes == 0 {
		s.checkpointBytes = defaultCheckpointBytes
	}
	if opts.BackgroundReorg {
		if !opts.Metrics {
			s.Close()
			return nil, errors.New("ccam: Options.BackgroundReorg requires Options.Metrics (the trigger reads the CRR gauge)")
		}
		if err := s.startReorganizer(opts); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// RouteUnitAggregate is the result of an aggregate query over a
// route-unit (a named collection of arcs, e.g. a bus route).
type RouteUnitAggregate = netfile.RouteUnitAggregate

// EvaluateRouteUnit retrieves all nodes and edges of a route-unit and
// aggregates the member edges' costs — the paper's motivating
// decision-support query (comparing ridership or flow across named
// routes).
func (s *Store) EvaluateRouteUnit(name string, members [][2]NodeID) (RouteUnitAggregate, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.file()
	if err != nil {
		return RouteUnitAggregate{}, err
	}
	if s.obs != nil {
		sn := s.obs.beginOp(s.obs.evaluateRouteUnit, f)
		agg, err := f.EvaluateRouteUnit(name, members)
		sn.end(err)
		return agg, err
	}
	return f.EvaluateRouteUnit(name, members)
}

// Scan visits every stored record, page by page (a sequential scan). fn
// returning false stops early.
func (s *Store) Scan(fn func(rec *Record) bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.file()
	if err != nil {
		return err
	}
	if s.obs != nil {
		sn := s.obs.beginOp(s.obs.scan, f)
		err := f.Scan(fn)
		sn.end(err)
		return err
	}
	return f.Scan(fn)
}
