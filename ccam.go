// Package ccam is a connectivity-clustered access method for aggregate
// queries on transportation networks, reproducing Shekhar and Liu,
// "CCAM: A Connectivity-Clustered Access Method for Aggregate Queries
// on Transportation Networks" (ICDE 1995).
//
// A CCAM store keeps the nodes of a general network (e.g. a road map)
// in disk pages clustered by connectivity: the nodes of the network are
// assigned to pages via graph partitioning so that a pair of connected
// nodes usually shares a page (a high Connectivity Residue Ratio). That
// makes the operations behind aggregate network queries — Find,
// Get-A-successor, Get-successors and route evaluation — cheap in data
// page accesses, and Insert/Delete maintain the clustering through
// incremental reorganization policies.
//
// # Quick start
//
//	net := ccam.NewNetwork()
//	net.AddNode(ccam.Node{ID: 1, Pos: ccam.Point{X: 0, Y: 0}})
//	net.AddNode(ccam.Node{ID: 2, Pos: ccam.Point{X: 1, Y: 0}})
//	net.AddEdge(ccam.Edge{From: 1, To: 2, Cost: 2.5, Weight: 1})
//
//	store, err := ccam.Open(ccam.Options{PageSize: 2048})
//	...
//	err = store.Build(net)
//	rec, err := store.Find(1)
//	agg, err := store.EvaluateRoute(ccam.Route{1, 2})
//
// Baseline access methods from the paper's evaluation (DFS-AM, BFS-AM,
// WDFS-AM and the Grid File) are available through NewBaseline for
// comparison studies; the experiment harness behind cmd/ccam-bench
// regenerates every table and figure of the paper.
package ccam

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	iccam "ccam/internal/ccam"
	"ccam/internal/geom"
	"ccam/internal/graph"
	"ccam/internal/gridfile"
	"ccam/internal/metrics"
	"ccam/internal/netfile"
	"ccam/internal/partition"
	"ccam/internal/query"
	"ccam/internal/storage"
	"ccam/internal/topo"
)

// Core re-exported types. The network model lives in internal/graph,
// records and operations in internal/netfile; these aliases make the
// root package self-sufficient for library users.
type (
	// NodeID identifies a network node.
	NodeID = graph.NodeID
	// Node is a network node: id, planar position, attribute payload.
	Node = graph.Node
	// Edge is a directed edge with traversal cost and access weight.
	Edge = graph.Edge
	// Network is an in-memory directed network with successor- and
	// predecessor-lists.
	Network = graph.Network
	// Route is a node sequence connected by directed edges.
	Route = graph.Route
	// Point is a position in the plane.
	Point = geom.Point
	// Rect is an axis-aligned rectangle (for range queries).
	Rect = geom.Rect
	// Record is the stored form of a node: node data, successor-list,
	// predecessor-list.
	Record = netfile.Record
	// SuccEntry is one successor-list element.
	SuccEntry = netfile.SuccEntry
	// InsertOp describes a node insertion with its edges.
	InsertOp = netfile.InsertOp
	// RouteAggregate is the result of a route evaluation query.
	RouteAggregate = netfile.RouteAggregate
	// Policy selects the reorganization behaviour of maintenance
	// operations (paper Table 1).
	Policy = netfile.Policy
	// AccessMethod is the contract shared by CCAM and the baseline
	// file organizations.
	AccessMethod = netfile.AccessMethod
	// IOStats counts physical page transfers.
	IOStats = storage.Stats
	// Placement maps nodes to their data pages.
	Placement = graph.Placement
)

// Reorganization policies, in increasing order of overhead.
const (
	// FirstOrder avoids or delays reorganization (only underflow and
	// overflow are handled).
	FirstOrder = netfile.FirstOrder
	// SecondOrder reorganizes the pages the update touches anyway.
	SecondOrder = netfile.SecondOrder
	// HigherOrder also reorganizes the PAG-neighbor pages.
	HigherOrder = netfile.HigherOrder
)

// Common sentinel errors.
var (
	// ErrNotFound reports a missing node.
	ErrNotFound = netfile.ErrNotFound
	// ErrDuplicate reports an insert of an existing node.
	ErrDuplicate = netfile.ErrDuplicate
	// ErrNoPath reports an unreachable shortest-path destination.
	ErrNoPath = query.ErrNoPath
	// ErrChecksum reports a page (or file header) whose stored CRC32
	// does not match its contents — a torn write, bit rot or a
	// misdirected write in a file-backed store. It surfaces wrapped
	// from any operation that touches the damaged page; ccam-fsck
	// locates and (with -repair) quarantines the page.
	ErrChecksum = storage.ErrChecksum
	// ErrCorruptedPage reports a page whose structure (slotted-page
	// header, slot directory, free-list chain) is invalid.
	ErrCorruptedPage = storage.ErrCorruptedPage
)

// NewNetwork returns an empty in-memory network.
func NewNetwork() *Network { return graph.NewNetwork() }

// NewRect returns the rectangle spanning two corner points.
func NewRect(a, b Point) Rect { return geom.NewRect(a, b) }

// InsertOpFromNode builds the InsertOp that re-inserts node id of g
// with all its current edges.
func InsertOpFromNode(g *Network, id NodeID) (*InsertOp, error) {
	return netfile.InsertOpFromNode(g, id)
}

// CRR returns the Connectivity Residue Ratio of a placement: the
// fraction of edges whose endpoints share a data page.
func CRR(g *Network, p Placement) float64 { return graph.CRR(g, p) }

// WCRR returns the Weighted Connectivity Residue Ratio of a placement.
func WCRR(g *Network, p Placement) float64 { return graph.WCRR(g, p) }

// Options configures a CCAM store.
type Options struct {
	// PageSize is the disk block size in bytes (default 2048).
	PageSize int
	// PoolPages is the buffer pool capacity in pages (default 32).
	PoolPages int
	// Dynamic selects the incremental create (CCAM-D): Build loads the
	// network as a sequence of Add-node operations with incremental
	// reclustering, which handles networks too large to partition in
	// one pass. The default is the static create (CCAM-S).
	Dynamic bool
	// Seed drives the partitioner's randomized restarts; equal seeds
	// give identical files.
	Seed int64
	// Path, when non-empty, stores data pages in an os.File-backed page
	// store at that location instead of in memory.
	Path string
	// Spatial selects the secondary spatial index: SpatialZOrder (the
	// paper's Z-ordered B+-tree, the default) or SpatialRTree.
	Spatial SpatialIndexKind
	// Parallelism bounds the worker pool of the batch queries
	// (FindBatch, EvaluateRoutes). Zero means runtime.GOMAXPROCS(0).
	Parallelism int
	// ReadLatency, when positive, charges that much simulated
	// wall-clock time per physical data-page read of the in-memory
	// store, reproducing the paper's disk-resident regime for
	// throughput experiments (page-access counts are unaffected).
	// Ignored when Path is set.
	ReadLatency time.Duration
	// Metrics enables the observability registry: per-operation
	// counters and latency histograms, per-class page-access counters
	// (B+-tree index vs CCAM data pages), buffer hit/miss latencies and
	// CRR/WCRR gauges refreshed after every mutation. Disabled by
	// default; a disabled store pays one nil check per operation and
	// allocates nothing for instrumentation.
	Metrics bool
	// TraceCapacity, when positive, enables operation tracing: the
	// store keeps the most recent TraceCapacity operation traces, each
	// recording per-span timing of index descent, buffer fetch and
	// physical read. Independent of Metrics.
	TraceCapacity int
}

// SpatialIndexKind selects the secondary spatial index structure.
type SpatialIndexKind = netfile.SpatialKind

// Spatial index kinds.
const (
	// SpatialZOrder is the paper's Z-ordered B+-tree.
	SpatialZOrder = netfile.SpatialZOrder
	// SpatialRTree is Guttman's R-tree.
	SpatialRTree = netfile.SpatialRTree
)

// Store is a CCAM file: the paper's access method behind a convenience
// facade. All methods are safe for concurrent use under a
// reader-writer lock: the query operations (Find, GetASuccessor,
// GetSuccessors, EvaluateRoute, RangeQuery, Nearest, the graph
// searches, Scan and the read-only accessors) take a shared lock and
// run in parallel with each other, while Build, Insert, Delete,
// InsertEdge, DeleteEdge, SetEdgeCost, ResetIO, Flush and Close are
// exclusive. This departs from the paper's one-query-at-a-time cost
// model on purpose — route-evaluation workloads are read-dominated —
// without changing any per-operation page-access count. FindBatch and
// EvaluateRoutes additionally fan one call's work across a bounded
// worker pool (see Options.Parallelism).
type Store struct {
	mu          sync.RWMutex
	m           *iccam.Method
	fs          *storage.FileStore
	parallelism int
	// obs is non-nil only when Options.Metrics was set; every operation
	// branches on it before paying any instrumentation cost.
	obs    *observability
	tracer *metrics.Tracer
	// lastIO preserves the final I/O snapshot across Close, so IO()
	// keeps answering on a closed store.
	lastIO IOStats
	closed bool
}

// Open creates a new, empty CCAM store.
func Open(opts Options) (*Store, error) {
	if opts.PageSize == 0 {
		opts.PageSize = 2048
	}
	cfg := iccam.Config{
		PageSize:    opts.PageSize,
		PoolPages:   opts.PoolPages,
		Seed:        opts.Seed,
		Dynamic:     opts.Dynamic,
		Spatial:     opts.Spatial,
		ReadLatency: opts.ReadLatency,
	}
	var fs *storage.FileStore
	if opts.Path != "" {
		// File-backed pages carry a CRC32 trailer verified on every
		// physical read, so on-disk corruption surfaces as ErrChecksum
		// instead of silently wrong records. The on-disk page size is
		// opts.PageSize; the trailer comes out of each page's payload.
		cs, inner, err := storage.CreateCheckedFile(opts.Path, opts.PageSize)
		if err != nil {
			return nil, err
		}
		fs = inner
		cfg.Store = cs
		cfg.PageSize = cs.PageSize()
	}
	var obs *observability
	var tracer *metrics.Tracer
	if opts.TraceCapacity > 0 {
		tracer = metrics.NewTracer(opts.TraceCapacity)
		cfg.Tracer = tracer
	}
	if opts.Metrics {
		obs = newObservability(metrics.NewRegistry(), tracer)
		cfg.Metrics = obs.reg
	}
	m, err := iccam.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Store{m: m, fs: fs, parallelism: opts.Parallelism, obs: obs, tracer: tracer}, nil
}

// Build loads network g into the store (the paper's Create()),
// replacing any previous contents.
func (s *Store) Build(g *Network) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.obs == nil {
		return s.m.Build(g)
	}
	start := time.Now()
	err := s.m.Build(g)
	om := s.obs.build
	om.count.Inc()
	if err != nil {
		om.errs.Inc()
		return err
	}
	om.latency.ObserveSince(start)
	s.obs.mirrorFromNetwork(g)
	s.obs.refreshGauges(s.m.File())
	return nil
}

func (s *Store) file() (*netfile.File, error) {
	f := s.m.File()
	if f == nil {
		return nil, fmt.Errorf("ccam: store is empty; call Build first")
	}
	return f, nil
}

// Find retrieves the record of a node.
func (s *Store) Find(id NodeID) (*Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.file()
	if err != nil {
		return nil, err
	}
	if s.obs != nil {
		sn := s.obs.beginOp(s.obs.find, f)
		rec, err := f.Find(id)
		sn.end(err)
		return rec, err
	}
	return f.Find(id)
}

// GetASuccessor retrieves the record of succ, a successor of cur; the
// buffered page containing cur is searched first.
func (s *Store) GetASuccessor(cur *Record, succ NodeID) (*Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.file()
	if err != nil {
		return nil, err
	}
	if s.obs != nil {
		sn := s.obs.beginOp(s.obs.getASuccessor, f)
		rec, err := f.GetASuccessor(cur, succ)
		sn.end(err)
		return rec, err
	}
	return f.GetASuccessor(cur, succ)
}

// GetSuccessors retrieves the records of all successors of a node.
func (s *Store) GetSuccessors(id NodeID) ([]*Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.file()
	if err != nil {
		return nil, err
	}
	if s.obs != nil {
		sn := s.obs.beginOp(s.obs.getSuccessors, f)
		recs, err := f.GetSuccessors(id)
		sn.end(err)
		return recs, err
	}
	return f.GetSuccessors(id)
}

// EvaluateRoute computes the aggregate property of a route as a Find
// followed by Get-A-successor operations.
func (s *Store) EvaluateRoute(route Route) (RouteAggregate, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.file()
	if err != nil {
		return RouteAggregate{}, err
	}
	if s.obs != nil {
		sn := s.obs.beginOp(s.obs.evaluateRoute, f)
		agg, err := f.EvaluateRoute(route)
		sn.end(err)
		return agg, err
	}
	return f.EvaluateRoute(route)
}

// RangeQuery returns all records whose positions lie inside rect, via
// the Z-ordered secondary index.
func (s *Store) RangeQuery(rect Rect) ([]*Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.file()
	if err != nil {
		return nil, err
	}
	if s.obs != nil {
		sn := s.obs.beginOp(s.obs.rangeQuery, f)
		recs, err := f.RangeQuery(rect)
		sn.end(err)
		return recs, err
	}
	return f.RangeQuery(rect)
}

// Insert adds a new node with its edges under the given policy.
func (s *Store) Insert(op *InsertOp, policy Policy) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.obs == nil || s.m.File() == nil {
		return s.m.Insert(op, policy)
	}
	sn := s.obs.beginOp(s.obs.insert, s.m.File())
	err := s.m.Insert(op, policy)
	sn.end(err)
	if err == nil {
		s.obs.noteInsert(op)
		s.obs.refreshGauges(s.m.File())
	}
	return err
}

// Delete removes a node and its incident edges under the given policy.
func (s *Store) Delete(id NodeID, policy Policy) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.obs == nil || s.m.File() == nil {
		return s.m.Delete(id, policy)
	}
	sn := s.obs.beginOp(s.obs.delete_, s.m.File())
	err := s.m.Delete(id, policy)
	sn.end(err)
	if err == nil {
		s.obs.noteDelete(id)
		s.obs.refreshGauges(s.m.File())
	}
	return err
}

// InsertEdge adds a directed edge between stored nodes.
func (s *Store) InsertEdge(from, to NodeID, cost float32, policy Policy) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.obs == nil || s.m.File() == nil {
		return s.m.InsertEdge(from, to, cost, policy)
	}
	sn := s.obs.beginOp(s.obs.insertEdge, s.m.File())
	err := s.m.InsertEdge(from, to, cost, policy)
	sn.end(err)
	if err == nil {
		s.obs.addMirrorEdge(from, to, 1)
		s.obs.refreshGauges(s.m.File())
	}
	return err
}

// DeleteEdge removes a directed edge.
func (s *Store) DeleteEdge(from, to NodeID, policy Policy) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.obs == nil || s.m.File() == nil {
		return s.m.DeleteEdge(from, to, policy)
	}
	sn := s.obs.beginOp(s.obs.deleteEdge, s.m.File())
	err := s.m.DeleteEdge(from, to, policy)
	sn.end(err)
	if err == nil {
		s.obs.removeMirrorEdge(from, to)
		s.obs.refreshGauges(s.m.File())
	}
	return err
}

// Has reports whether a node is stored. Unlike Contains, it surfaces
// real failures: an unbuilt store or an index error comes back as a
// non-nil error instead of being conflated with "absent".
func (s *Store) Has(id NodeID) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.file()
	if err != nil {
		return false, err
	}
	return f.HasRecord(id)
}

// Contains reports whether a node is stored. It is a convenience
// wrapper around Has that treats every failure as "not stored".
func (s *Store) Contains(id NodeID) bool {
	ok, err := s.Has(id)
	return err == nil && ok
}

// Len returns the number of stored node records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.file()
	if err != nil {
		return 0
	}
	return f.NumNodes()
}

// NumPages returns the number of data pages in the file.
func (s *Store) NumPages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.file()
	if err != nil {
		return 0
	}
	return f.NumPages()
}

// Placement returns the current node → data page assignment.
func (s *Store) Placement() Placement {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.file()
	if err != nil {
		return Placement{}
	}
	return f.Placement()
}

// CRR measures the store's Connectivity Residue Ratio against network
// g.
func (s *Store) CRR(g *Network) float64 { return CRR(g, s.Placement()) }

// WCRR measures the store's Weighted Connectivity Residue Ratio
// against network g.
func (s *Store) WCRR(g *Network) float64 { return WCRR(g, s.Placement()) }

// IO returns the physical data-page I/O counters. The snapshot is
// consistent under concurrent readers: every counter is an atomic
// load, so no field is ever torn mid-increment. On a closed store it
// returns the last snapshot, taken at Close().
func (s *Store) IO() IOStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return s.lastIO
	}
	f, err := s.file()
	if err != nil {
		return IOStats{}
	}
	return f.DataIO()
}

// ResetIO empties the buffer pool and zeroes the I/O counters, so the
// next operation is measured cold.
func (s *Store) ResetIO() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := s.file()
	if err != nil {
		return err
	}
	return f.ResetIO()
}

// Flush writes all buffered dirty pages to the underlying store, and
// syncs the page file when the store is file-backed.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := s.file()
	if err != nil {
		return err
	}
	if err := f.Flush(); err != nil {
		return err
	}
	if s.fs != nil {
		return s.fs.Sync()
	}
	return nil
}

// Close flushes and releases the store. The I/O counters are
// snapshotted first, so IO() keeps answering afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f := s.m.File(); f != nil {
		if err := f.Flush(); err != nil {
			return err
		}
		s.lastIO = f.DataIO()
	}
	s.closed = true
	if s.fs != nil {
		return s.fs.Close()
	}
	return nil
}

// BaselineKind names a comparison access method from the paper's
// evaluation.
type BaselineKind string

// Baseline access methods.
const (
	// DFSAM orders nodes by depth-first traversal.
	DFSAM BaselineKind = "dfs-am"
	// BFSAM orders nodes by breadth-first traversal.
	BFSAM BaselineKind = "bfs-am"
	// WDFSAM orders nodes by weight-guided depth-first traversal.
	WDFSAM BaselineKind = "wdfs-am"
	// GridFile clusters nodes by spatial proximity.
	GridFile BaselineKind = "grid-file"
)

// NewBaseline constructs one of the paper's comparison access methods.
// The returned AccessMethod shares CCAM's file machinery (Find,
// Get-A-successor, Get-successors and route evaluation through its
// File()), differing in placement and maintenance.
func NewBaseline(kind BaselineKind, opts Options) (AccessMethod, error) {
	if opts.PageSize == 0 {
		opts.PageSize = 2048
	}
	switch kind {
	case DFSAM:
		return topo.New(topo.Config{Kind: topo.DFS, PageSize: opts.PageSize, PoolPages: opts.PoolPages, Seed: opts.Seed})
	case BFSAM:
		return topo.New(topo.Config{Kind: topo.BFS, PageSize: opts.PageSize, PoolPages: opts.PoolPages, Seed: opts.Seed})
	case WDFSAM:
		return topo.New(topo.Config{Kind: topo.WDFS, PageSize: opts.PageSize, PoolPages: opts.PoolPages, Seed: opts.Seed})
	case GridFile:
		return gridfile.New(gridfile.Config{PageSize: opts.PageSize, PoolPages: opts.PoolPages})
	default:
		return nil, fmt.Errorf("ccam: unknown baseline %q", kind)
	}
}

// RoadMapOpts configures the synthetic road-network generator.
type RoadMapOpts = graph.RoadMapOpts

// MinneapolisLikeOpts returns generator options matching the scale of
// the paper's test data (1077 nodes, 3045 directed edges).
func MinneapolisLikeOpts() RoadMapOpts { return graph.MinneapolisLikeOpts() }

// RoadMap generates a synthetic planar road network.
func RoadMap(opts RoadMapOpts) (*Network, error) { return graph.RoadMap(opts) }

// ReadNetworkJSON parses a network from the JSON schema written by
// Network.WriteJSON (and by cmd/netgen).
func ReadNetworkJSON(r io.Reader) (*Network, error) { return graph.ReadJSON(r) }

// RandomWalkRoutes generates count routes of exactly length nodes each
// by random walks on g, the workload of the paper's route evaluation
// experiments.
func RandomWalkRoutes(g *Network, count, length int, rng *rand.Rand) ([]Route, error) {
	return graph.RandomWalkRoutes(g, count, length, rng)
}

// ApplyRouteWeights sets each edge's access weight to the number of
// times the given routes traverse it (the paper's WCRR workload).
func ApplyRouteWeights(g *Network, routes []Route) (int, error) {
	return graph.ApplyRouteWeights(g, routes)
}

// compile-time interface checks for the facade's building blocks
var (
	_ partition.Bipartitioner = (*partition.RatioCut)(nil)
	_ AccessMethod            = (*iccam.Method)(nil)
)

// SetEdgeCost updates the stored cost (e.g. current travel time) of a
// directed edge in place.
func (s *Store) SetEdgeCost(from, to NodeID, cost float32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := s.file()
	if err != nil {
		return err
	}
	if s.obs != nil {
		sn := s.obs.beginOp(s.obs.setEdgeCost, f)
		err := f.SetEdgeCost(from, to, cost)
		sn.end(err)
		return err
	}
	return f.SetEdgeCost(from, to, cost)
}

// Nearest returns the k stored records closest to p by Euclidean
// distance, nearest first, through the spatial index.
func (s *Store) Nearest(p Point, k int) ([]*Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.file()
	if err != nil {
		return nil, err
	}
	if s.obs != nil {
		sn := s.obs.beginOp(s.obs.nearest, f)
		recs, err := f.Nearest(p, k)
		sn.end(err)
		return recs, err
	}
	return f.Nearest(p, k)
}

// Query results re-exported from the query layer.
type (
	// Path is a shortest-path result.
	Path = query.Path
	// TourAggregate is the result of a tour evaluation query.
	TourAggregate = query.TourAggregate
	// Allocation assigns one demand node to its nearest facility.
	Allocation = query.Allocation
)

// ShortestPath computes a cheapest path between two stored nodes with
// Dijkstra's algorithm over the file (Get-successors expansions).
func (s *Store) ShortestPath(src, dst NodeID) (Path, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.file()
	if err != nil {
		return Path{}, err
	}
	if s.obs != nil {
		sn := s.obs.beginOp(s.obs.shortestPath, f)
		p, err := query.Dijkstra(f, src, dst)
		sn.end(err)
		return p, err
	}
	return query.Dijkstra(f, src, dst)
}

// ShortestPathAStar computes a cheapest path with A*, using a
// straight-line-distance heuristic scaled by minCostPerUnit (a lower
// bound on edge cost per unit of Euclidean distance; 0 falls back to
// Dijkstra).
func (s *Store) ShortestPathAStar(src, dst NodeID, minCostPerUnit float64) (Path, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.file()
	if err != nil {
		return Path{}, err
	}
	if s.obs != nil {
		sn := s.obs.beginOp(s.obs.shortestPath, f)
		p, err := query.AStar(f, src, dst, minCostPerUnit)
		sn.end(err)
		return p, err
	}
	return query.AStar(f, src, dst, minCostPerUnit)
}

// EvaluateTour evaluates a closed tour (the route plus the edge back to
// its start).
func (s *Store) EvaluateTour(tour Route) (TourAggregate, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.file()
	if err != nil {
		return TourAggregate{}, err
	}
	if s.obs != nil {
		sn := s.obs.beginOp(s.obs.evaluateTour, f)
		agg, err := query.EvaluateTour(f, tour)
		sn.end(err)
		return agg, err
	}
	return query.EvaluateTour(f, tour)
}

// LocationAllocation allocates every reachable node to its cheapest
// facility by network distance, returning the allocations plus the
// total and maximum assignment costs.
func (s *Store) LocationAllocation(facilities []NodeID) ([]Allocation, float64, float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.file()
	if err != nil {
		return nil, 0, 0, err
	}
	if s.obs != nil {
		sn := s.obs.beginOp(s.obs.locationAllocation, f)
		allocs, total, max, err := query.LocationAllocation(f, facilities)
		sn.end(err)
		return allocs, total, max, err
	}
	return query.LocationAllocation(f, facilities)
}

// OpenPath reopens a file-backed CCAM store previously created with
// Open(Options{Path: ...}). The data pages are read back from disk —
// each page's checksum verified — and the memory-resident structures
// (indexes, free-space map) are rebuilt by one scan. PageSize in opts
// is ignored; the on-disk page size wins. A torn header, broken free
// list or corrupted page fails the open with a wrapped ErrChecksum or
// ErrCorruptedPage; ccam-fsck -repair quarantines the damage so the
// surviving records open.
func OpenPath(path string, opts Options) (*Store, error) {
	st, fs, err := storage.OpenPageFile(path)
	if err != nil {
		return nil, err
	}
	f, err := netfile.OpenFromStore(st, opts.PoolPages)
	if err != nil {
		fs.Close()
		return nil, err
	}
	m, err := iccam.New(iccam.Config{
		PageSize:  st.PageSize(),
		PoolPages: opts.PoolPages,
		Seed:      opts.Seed,
		Dynamic:   opts.Dynamic,
		Store:     st,
	})
	if err != nil {
		fs.Close()
		return nil, err
	}
	if err := m.Attach(f); err != nil {
		fs.Close()
		return nil, err
	}
	var obs *observability
	var tracer *metrics.Tracer
	if opts.TraceCapacity > 0 {
		tracer = metrics.NewTracer(opts.TraceCapacity)
	}
	if opts.Metrics {
		obs = newObservability(metrics.NewRegistry(), tracer)
	}
	if obs != nil || tracer != nil {
		var reg *metrics.Registry
		if obs != nil {
			reg = obs.reg
		}
		f.EnableMetrics(reg, tracer)
	}
	if obs != nil {
		// Rebuild the topology mirror from the stored records (weights
		// are not persisted, so edges get weight 1 and WCRR == CRR),
		// then discard the scan's I/O so counters start clean.
		var recs []*Record
		if err := f.Scan(func(rec *Record) bool { recs = append(recs, rec); return true }); err != nil {
			fs.Close()
			return nil, err
		}
		obs.mirrorFromRecords(recs)
		obs.refreshGauges(f)
		if err := f.ResetIO(); err != nil {
			fs.Close()
			return nil, err
		}
	}
	return &Store{m: m, fs: fs, parallelism: opts.Parallelism, obs: obs, tracer: tracer}, nil
}

// RouteUnitAggregate is the result of an aggregate query over a
// route-unit (a named collection of arcs, e.g. a bus route).
type RouteUnitAggregate = netfile.RouteUnitAggregate

// EvaluateRouteUnit retrieves all nodes and edges of a route-unit and
// aggregates the member edges' costs — the paper's motivating
// decision-support query (comparing ridership or flow across named
// routes).
func (s *Store) EvaluateRouteUnit(name string, members [][2]NodeID) (RouteUnitAggregate, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.file()
	if err != nil {
		return RouteUnitAggregate{}, err
	}
	if s.obs != nil {
		sn := s.obs.beginOp(s.obs.evaluateRouteUnit, f)
		agg, err := f.EvaluateRouteUnit(name, members)
		sn.end(err)
		return agg, err
	}
	return f.EvaluateRouteUnit(name, members)
}

// Scan visits every stored record, page by page (a sequential scan). fn
// returning false stops early.
func (s *Store) Scan(fn func(rec *Record) bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.file()
	if err != nil {
		return err
	}
	if s.obs != nil {
		sn := s.obs.beginOp(s.obs.scan, f)
		err := f.Scan(fn)
		sn.end(err)
		return err
	}
	return f.Scan(fn)
}
