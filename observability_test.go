package ccam

// Store-level tests of the observability layer: per-operation
// instruments, the CRR/WCRR gauges, the exporters and the zero-cost
// disabled path. The metric primitives themselves (histogram quantiles,
// Prometheus/expvar rendering, trace ring) are tested in
// internal/metrics.

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func obsStore(t *testing.T) (*Store, *Network) {
	t.Helper()
	g, err := RoadMap(MinneapolisLikeOpts())
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenWith(
		WithPageSize(2048),
		WithPoolPages(8),
		WithSeed(1),
		WithMetrics(),
		WithTracing(64),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	if err := s.Build(g); err != nil {
		t.Fatal(err)
	}
	return s, g
}

func TestOpCountersAndDeltas(t *testing.T) {
	s, g := obsStore(t)
	ids := g.NodeIDs()
	const finds = 50
	for i := 0; i < finds; i++ {
		if _, err := s.Find(context.Background(), ids[i%len(ids)]); err != nil {
			t.Fatal(err)
		}
	}
	reg := s.Metrics()
	if got := reg.Counter("ccam_op_find_total").Value(); got != finds {
		t.Fatalf("find total = %d, want %d", got, finds)
	}
	if got := reg.Counter("ccam_op_find_errors_total").Value(); got != 0 {
		t.Fatalf("find errors = %d, want 0", got)
	}
	if snap := reg.Histogram("ccam_op_find_ns").Snapshot(); snap.Count != finds {
		t.Fatalf("find latency samples = %d, want %d", snap.Count, finds)
	}
	// A point lookup touches exactly one data page, so per-op buffer
	// accesses must sum to the operation count, and the physical reads
	// charged to finds can never exceed the misses.
	hits := reg.Counter("ccam_op_find_buffer_hits_total").Value()
	misses := reg.Counter("ccam_op_find_buffer_misses_total").Value()
	if hits+misses != finds {
		t.Fatalf("buffer accesses = %d hits + %d misses, want %d total", hits, misses, finds)
	}
	if reads := reg.Counter("ccam_op_find_data_reads_total").Value(); reads != misses {
		t.Fatalf("data reads = %d, want = misses (%d)", reads, misses)
	}
	// Every descent visits the index; the tree is at least one level
	// deep, so index pages >= one per operation.
	if idx := reg.Counter("ccam_op_find_index_pages_total").Value(); idx < finds {
		t.Fatalf("index pages = %d, want >= %d", idx, finds)
	}
	// A failed lookup counts in both total and errors.
	if _, err := s.Find(context.Background(), NodeID(1<<30)); err == nil {
		t.Fatal("lookup of absent node succeeded")
	}
	if got := reg.Counter("ccam_op_find_errors_total").Value(); got != 1 {
		t.Fatalf("find errors after miss = %d, want 1", got)
	}
}

func TestTracesRecorded(t *testing.T) {
	s, g := obsStore(t)
	ids := g.NodeIDs()
	s.ResetIO() // empty the pool so the next find has a physical read
	if _, err := s.Find(context.Background(), ids[0]); err != nil {
		t.Fatal(err)
	}
	trs := s.Traces(1)
	if len(trs) != 1 {
		t.Fatalf("got %d traces, want 1", len(trs))
	}
	tr := trs[0]
	if tr.Op != "find" || tr.Err != "" {
		t.Fatalf("trace = %q err=%q, want find/ok", tr.Op, tr.Err)
	}
	names := map[string]bool{}
	for _, sp := range tr.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"index.descent", "buffer.fetch", "storage.read"} {
		if !names[want] {
			t.Fatalf("trace spans %v missing %q", tr.Spans, want)
		}
	}
}

func TestIOAfterClose(t *testing.T) {
	g, err := RoadMap(MinneapolisLikeOpts())
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(Options{PageSize: 2048, PoolPages: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Build(g); err != nil {
		t.Fatal(err)
	}
	for _, id := range g.NodeIDs()[:64] {
		if _, err := s.Find(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	before := s.IO()
	if before.Reads == 0 {
		t.Fatal("expected physical reads before close")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Close may flush dirty pages, so writes can grow; reads cannot.
	after := s.IO()
	if after.Reads != before.Reads {
		t.Fatalf("IO after close: reads %d, want %d", after.Reads, before.Reads)
	}
	if again := s.IO(); again != after {
		t.Fatalf("IO after close is not stable: %v then %v", after, again)
	}
}

func TestGaugesTrackBuildAndMutations(t *testing.T) {
	s, g := obsStore(t)
	reg := s.Metrics()
	crr, wcrr := reg.Gauge("ccam_crr").Value(), reg.Gauge("ccam_wcrr").Value()
	if got := s.CRR(g); math.Abs(crr-got) > 1e-12 {
		t.Fatalf("crr gauge = %v, direct = %v", crr, got)
	}
	if got := s.WCRR(g); math.Abs(wcrr-got) > 1e-12 {
		t.Fatalf("wcrr gauge = %v, direct = %v", wcrr, got)
	}

	// Delete and re-insert a node: the gauges must stay in [0,1]
	// throughout, and after the round trip the mirror's edge set again
	// matches the network, so the CRR gauge must equal the direct
	// recomputation against the store's new placement.
	rng := rand.New(rand.NewSource(2))
	ids := g.NodeIDs()
	for i := 0; i < 8; i++ {
		id := ids[rng.Intn(len(ids))]
		op, err := InsertOpFromNode(g, id)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Delete(id, SecondOrder); err != nil {
			t.Fatal(err)
		}
		if v := reg.Gauge("ccam_crr").Value(); v < 0 || v > 1 {
			t.Fatalf("crr gauge out of range after delete: %v", v)
		}
		if err := s.Insert(op, SecondOrder); err != nil {
			t.Fatal(err)
		}
	}
	crr = reg.Gauge("ccam_crr").Value()
	if got := s.CRR(g); math.Abs(crr-got) > 1e-12 {
		t.Fatalf("crr gauge after mutations = %v, direct = %v", crr, got)
	}
}

func TestExportersViaStore(t *testing.T) {
	s, g := obsStore(t)
	if _, err := s.Find(context.Background(), g.NodeIDs()[0]); err != nil {
		t.Fatal(err)
	}

	mux := http.NewServeMux()
	ServeMetrics(mux, s)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	prom := get("/metrics")
	if ct := prom.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body := prom.Body.String()
	for _, want := range []string{
		"# TYPE ccam_op_find_total counter",
		"ccam_op_find_total 1",
		"# TYPE ccam_crr gauge",
		"# TYPE ccam_op_find_ns histogram",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	var doc map[string]any
	if err := json.Unmarshal(get("/metrics.json").Body.Bytes(), &doc); err != nil {
		t.Fatalf("/metrics.json is not valid JSON: %v", err)
	}
	if _, ok := doc["ccam_op_find_total"]; !ok {
		t.Fatalf("/metrics.json missing find counter: %v", doc)
	}

	if tr := get("/traces").Body.String(); !strings.Contains(tr, "find") {
		t.Fatalf("/traces missing the find trace:\n%s", tr)
	}
}

// TestDisabledMetricsAddNoAllocs pins the zero-overhead claim: with
// metrics off, the facade wrapper must not allocate beyond what the
// underlying operation itself allocates.
func TestDisabledMetricsAddNoAllocs(t *testing.T) {
	g, err := RoadMap(MinneapolisLikeOpts())
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(Options{PageSize: 2048, PoolPages: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Build(g); err != nil {
		t.Fatal(err)
	}
	if s.Metrics() != nil || s.Tracer() != nil {
		t.Fatal("metrics unexpectedly enabled")
	}
	id := g.NodeIDs()[0]
	if _, err := s.Find(context.Background(), id); err != nil { // warm the page
		t.Fatal(err)
	}
	// The facade's read path is pin snapshot → find → unpin, so that is
	// the baseline the wrapper must not exceed.
	f := s.m.File()
	base := testing.AllocsPerRun(200, func() {
		snap := f.Snapshot()
		if _, err := snap.Find(id); err != nil {
			t.Fatal(err)
		}
		snap.Close()
	})
	wrapped := testing.AllocsPerRun(200, func() {
		if _, err := s.Find(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	})
	if wrapped > base {
		t.Fatalf("disabled facade allocates %.1f/op, bare file %.1f/op", wrapped, base)
	}
}
