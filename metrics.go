package ccam

import (
	"context"
	"expvar"
	"net/http"
	"sort"
	"strconv"
	"time"

	"ccam/internal/buffer"
	"ccam/internal/metrics"
	"ccam/internal/netfile"
	"ccam/internal/storage"
)

// Observability types re-exported from the metrics layer, so library
// users never import internal packages.
type (
	// Registry is a set of named counters, gauges and latency
	// histograms. It renders itself as Prometheus text (WriteTo) and as
	// expvar-compatible JSON (String).
	Registry = metrics.Registry
	// Tracer records recent operation traces in a ring buffer.
	Tracer = metrics.Tracer
	// Trace is one recorded operation with its spans.
	Trace = metrics.Trace
	// TraceSpan is one timed step inside a trace.
	TraceSpan = metrics.Span
	// HistSnapshot is a point-in-time view of a latency histogram.
	HistSnapshot = metrics.HistSnapshot
)

// WithTraceID returns a context carrying a wire trace id: store
// operations run with it tag their recorded traces, so
// /traces?trace=<id> can answer "what did that request do". A zero id
// returns ctx unchanged.
func WithTraceID(ctx context.Context, id uint64) context.Context {
	return metrics.WithTraceID(ctx, id)
}

// TraceIDFrom extracts the trace id carried by ctx (0 when none).
func TraceIDFrom(ctx context.Context) uint64 {
	return metrics.TraceIDFrom(ctx)
}

// opMetrics holds the pre-created instruments of one facade operation,
// so the instrumented path performs no name lookups.
type opMetrics struct {
	count, errs           *metrics.Counter
	latency               *metrics.Histogram
	dataReads, dataWrites *metrics.Counter
	idxPages              *metrics.Counter
	hits, misses          *metrics.Counter
}

func newOpMetrics(reg *metrics.Registry, name string) *opMetrics {
	p := "ccam_op_" + name + "_"
	return &opMetrics{
		count:      reg.Counter(p + "total"),
		errs:       reg.Counter(p + "errors_total"),
		latency:    reg.Histogram(p + "ns"),
		dataReads:  reg.Counter(p + "data_reads_total"),
		dataWrites: reg.Counter(p + "data_writes_total"),
		idxPages:   reg.Counter(p + "index_pages_total"),
		hits:       reg.Counter(p + "buffer_hits_total"),
		misses:     reg.Counter(p + "buffer_misses_total"),
	}
}

// mirrorEdge is one directed edge of the observability topology mirror.
type mirrorEdge struct {
	to     NodeID
	weight float64
}

// observability is the per-store instrumentation state. It exists only
// when metrics are enabled; every facade operation branches on the nil
// pointer first, so a disabled store pays one predictable branch and
// nothing else.
//
// The topology mirror (succs/preds) duplicates the stored network's
// adjacency with edge access weights, which the records themselves do
// not carry; it exists so the CRR/WCRR gauges can be refreshed after
// every mutation without re-reading the file. It is only accessed under
// the store's write lock (Build, Insert, Delete and the edge
// operations), so it needs no locking of its own.
type observability struct {
	reg    *metrics.Registry
	tracer *metrics.Tracer

	succs map[NodeID][]mirrorEdge
	preds map[NodeID][]NodeID

	// place mirrors the node → data-page assignment, and the counters
	// below are running sums over the mirror edges under it: total/
	// wtotal count every edge (weighted), unsplit/wunsplit the edges
	// whose endpoints share a page. CRR = unsplit/total and WCRR =
	// wunsplit/wtotal are then O(1) per refresh; mutations adjust the
	// sums per touched edge (edgeDelta) or per moved node
	// (samenessDelta) instead of a full pass over the mirror.
	place            map[NodeID]storage.PageID
	total, unsplit   int64
	wtotal, wunsplit float64
	// pageTally tracks, per data page, its incident mirror edges and how
	// many of them are split (cross-page). The background reorganizer
	// reads it to pick the worst-clustered neighborhoods.
	pageTally map[storage.PageID]*pageCounters

	crr, wcrr *metrics.Gauge

	// snapLag is the distance between the newest committed LSN and the
	// oldest pinned snapshot (0 with no readers pinned); snapsActive is
	// the live snapshot count. reorgRounds/reorgPages count background
	// reorganizer activity.
	snapLag, snapsActive    *metrics.Gauge
	reorgRounds, reorgPages *metrics.Counter

	// walCommitWait observes, per committed batch, the time the
	// committing request waited for its WAL commit record to become
	// durable (group-formation wait included).
	walCommitWait *metrics.Histogram

	find, getASuccessor, getSuccessors    *opMetrics
	evaluateRoute, rangeQuery, nearest    *opMetrics
	insert, delete_, insertEdge           *opMetrics
	deleteEdge, setEdgeCost               *opMetrics
	shortestPath, evaluateTour            *opMetrics
	locationAllocation, evaluateRouteUnit *opMetrics
	scan, findBatch, evaluateRoutes       *opMetrics
	build, apply, query                   *opMetrics
}

func newObservability(reg *metrics.Registry, tr *metrics.Tracer) *observability {
	return &observability{
		reg:    reg,
		tracer: tr,
		succs:  make(map[NodeID][]mirrorEdge),
		preds:  make(map[NodeID][]NodeID),
		place:  make(map[NodeID]storage.PageID),

		pageTally: make(map[storage.PageID]*pageCounters),

		crr:  reg.Gauge("ccam_crr"),
		wcrr: reg.Gauge("ccam_wcrr"),

		snapLag:     reg.Gauge("ccam_snapshot_lag"),
		snapsActive: reg.Gauge("ccam_snapshots_active"),
		reorgRounds: reg.Counter("ccam_reorg_rounds_total"),
		reorgPages:  reg.Counter("ccam_reorg_pages_total"),

		walCommitWait: reg.Histogram("ccam_wal_commit_wait_ns"),

		find:               newOpMetrics(reg, "find"),
		getASuccessor:      newOpMetrics(reg, "get_a_successor"),
		getSuccessors:      newOpMetrics(reg, "get_successors"),
		evaluateRoute:      newOpMetrics(reg, "evaluate_route"),
		rangeQuery:         newOpMetrics(reg, "range_query"),
		nearest:            newOpMetrics(reg, "nearest"),
		insert:             newOpMetrics(reg, "insert"),
		delete_:            newOpMetrics(reg, "delete"),
		insertEdge:         newOpMetrics(reg, "insert_edge"),
		deleteEdge:         newOpMetrics(reg, "delete_edge"),
		setEdgeCost:        newOpMetrics(reg, "set_edge_cost"),
		shortestPath:       newOpMetrics(reg, "shortest_path"),
		evaluateTour:       newOpMetrics(reg, "evaluate_tour"),
		locationAllocation: newOpMetrics(reg, "location_allocation"),
		evaluateRouteUnit:  newOpMetrics(reg, "evaluate_route_unit"),
		scan:               newOpMetrics(reg, "scan"),
		findBatch:          newOpMetrics(reg, "find_batch"),
		evaluateRoutes:     newOpMetrics(reg, "evaluate_routes"),
		build:              newOpMetrics(reg, "build"),
		apply:              newOpMetrics(reg, "apply"),
		query:              newOpMetrics(reg, "query"),
	}
}

// opFor maps a batch op to its per-operation instruments, so every op
// applied through Apply is attributed exactly like its standalone
// method.
func (o *observability) opFor(kind netfile.MutKind) *opMetrics {
	switch kind {
	case netfile.MutInsertNode:
		return o.insert
	case netfile.MutDeleteNode:
		return o.delete_
	case netfile.MutInsertEdge:
		return o.insertEdge
	case netfile.MutDeleteEdge:
		return o.deleteEdge
	default:
		return o.setEdgeCost
	}
}

// walInstrumentation builds the metric hooks wired into the store's
// write-ahead log: fsync count, commits acknowledged per fsync (the
// group-commit coalescing factor), appended records and bytes.
func (o *observability) walInstrumentation() storage.WALInstrumentation {
	return storage.WALInstrumentation{
		Fsyncs:    o.reg.Counter("ccam_wal_fsyncs_total"),
		GroupSize: o.reg.Histogram("ccam_wal_group_size"),
		Appends:   o.reg.Counter("ccam_wal_appends_total"),
		Bytes:     o.reg.Counter("ccam_wal_bytes_total"),
	}
}

// opSnap captures the layer counters at operation start; end() charges
// the operation with the deltas. The I/O attribution is exact while
// operations run one at a time (the paper's cost model); under
// concurrent readers a page fetched — or a prefetch issued — by an
// overlapping operation may be charged to this one, but the global
// per-class counters and latency histograms stay exact.
type opSnap struct {
	om    *opMetrics
	f     *netfile.File
	rs    *ReqStats
	start time.Time
	io    storage.Stats
	pool  buffer.Stats
	idx   int64
	pf    int64
}

func (o *observability) beginOp(om *opMetrics, f *netfile.File) opSnap {
	return opSnap{
		om:    om,
		f:     f,
		start: time.Now(),
		io:    f.DataIO(),
		pool:  f.Pool().Stats(),
		idx:   f.IndexVisits(),
		pf:    f.Pool().PrefetchStats().Issued,
	}
}

// beginOpCtx is beginOp plus per-request attribution: when ctx carries
// a *ReqStats (a request served by ccam-serve), end() charges the same
// deltas to it. Only the instrumented path (obs != nil) calls this, so
// the disabled path never pays the ctx.Value lookup.
func (o *observability) beginOpCtx(ctx context.Context, om *opMetrics, f *netfile.File) opSnap {
	sn := o.beginOp(om, f)
	sn.rs = ReqStatsFrom(ctx)
	return sn
}

func (sn opSnap) end(err error) {
	om := sn.om
	om.count.Inc()
	if err != nil {
		om.errs.Inc()
	}
	om.latency.ObserveSince(sn.start)
	io := sn.f.DataIO().Sub(sn.io)
	om.dataReads.Add(io.Reads)
	om.dataWrites.Add(io.Writes)
	ps := sn.f.Pool().Stats().Sub(sn.pool)
	om.hits.Add(ps.Hits)
	om.misses.Add(ps.Misses)
	idx := sn.f.IndexVisits() - sn.idx
	om.idxPages.Add(idx)
	if sn.rs != nil {
		sn.rs.Add(ReqStats{
			DataReads:    io.Reads,
			DataWrites:   io.Writes,
			IndexPages:   idx,
			BufferHits:   ps.Hits,
			BufferMisses: ps.Misses,
			Prefetches:   sn.f.Pool().PrefetchStats().Issued - sn.pf,
			Ops:          1,
		})
	}
}

// --- topology mirror maintenance (write lock held) ---

// pageCounters is one page's entry in the pageTally: how many mirror
// edges touch the page and how many of them cross to another page.
type pageCounters struct {
	edges, split int64
}

// mirrorFromNetwork resets the mirror to network g, keeping the real
// edge access weights. Callers follow up with refreshGauges, which
// resets the running counters the edge inserts touched.
func (o *observability) mirrorFromNetwork(g *Network) {
	o.succs = make(map[NodeID][]mirrorEdge, g.NumNodes())
	o.preds = make(map[NodeID][]NodeID, g.NumNodes())
	for _, id := range g.NodeIDs() {
		o.succs[id] = nil
	}
	for _, e := range g.Edges() {
		o.addMirrorEdge(e.From, e.To, e.Weight)
	}
}

// mirrorFromRecords resets the mirror from stored records (used when a
// file is reopened without its source network). Records carry no access
// weights, so every edge gets weight 1 and WCRR coincides with CRR
// until weights are reapplied. Callers follow up with refreshGauges.
func (o *observability) mirrorFromRecords(recs []*Record) {
	o.succs = make(map[NodeID][]mirrorEdge, len(recs))
	o.preds = make(map[NodeID][]NodeID, len(recs))
	for _, rec := range recs {
		if _, ok := o.succs[rec.ID]; !ok {
			o.succs[rec.ID] = nil
		}
		for _, s := range rec.Succs {
			o.addMirrorEdge(rec.ID, s.To, 1)
		}
	}
}

// tallyFor returns pid's pageTally entry, creating it on demand.
func (o *observability) tallyFor(pid storage.PageID) *pageCounters {
	t := o.pageTally[pid]
	if t == nil {
		t = &pageCounters{}
		o.pageTally[pid] = t
	}
	return t
}

// edgeDelta charges (sign=+1) or refunds (sign=-1) one mirror edge's
// full contribution to the running counters under the current place
// map: the total sums, the same-page sums when both endpoints share a
// page, and the per-page tallies.
func (o *observability) edgeDelta(from, to NodeID, weight float64, sign int64) {
	o.total += sign
	o.wtotal += float64(sign) * weight
	pf, okf := o.place[from]
	pt, okt := o.place[to]
	same := okf && okt && pf == pt
	if same {
		o.unsplit += sign
		o.wunsplit += float64(sign) * weight
	}
	if okf {
		t := o.tallyFor(pf)
		t.edges += sign
		if !same {
			t.split += sign
		}
		if t.edges <= 0 && t.split <= 0 {
			delete(o.pageTally, pf)
		}
	}
	if okt && (!okf || pt != pf) {
		t := o.tallyFor(pt)
		t.edges += sign
		if !same {
			t.split += sign
		}
		if t.edges <= 0 && t.split <= 0 {
			delete(o.pageTally, pt)
		}
	}
}

// moveNode applies one placement event: node id now lives on pid. The
// sameness sums of its incident edges are recomputed across the move.
func (o *observability) moveNode(id NodeID, pid storage.PageID) {
	if old, ok := o.place[id]; ok && old == pid {
		return
	}
	o.forIncidentEdges(id, -1)
	o.place[id] = pid
	o.forIncidentEdges(id, 1)
}

// forIncidentEdges refunds (sign=-1) or charges (sign=+1) the full
// contribution of every mirror edge incident to id.
func (o *observability) forIncidentEdges(id NodeID, sign int64) {
	for _, e := range o.succs[id] {
		o.edgeDelta(id, e.to, e.weight, sign)
	}
	for _, p := range o.preds[id] {
		if w, ok := o.weightOf(p, id); ok {
			o.edgeDelta(p, id, w, sign)
		}
	}
}

// weightOf finds the mirror weight of edge (from → to).
func (o *observability) weightOf(from, to NodeID) (float64, bool) {
	for _, e := range o.succs[from] {
		if e.to == to {
			return e.weight, true
		}
	}
	return 0, false
}

// applyPlaceEvents folds one operation's placement events into the
// place map and the running counters, in mutation order. A tombstone
// (record deleted) clears the node's placement; its mirror edges are
// already gone by then (noteDelete runs inside the operation, before
// the drain), so no sums move.
func (o *observability) applyPlaceEvents(evs []netfile.PlaceEvent) {
	for _, ev := range evs {
		if ev.Page == storage.InvalidPageID {
			o.forIncidentEdges(ev.ID, -1)
			delete(o.place, ev.ID)
			o.forIncidentEdges(ev.ID, 1)
			continue
		}
		o.moveNode(ev.ID, ev.Page)
	}
}

func (o *observability) addMirrorEdge(from, to NodeID, weight float64) {
	if weight <= 0 {
		weight = 1
	}
	o.succs[from] = append(o.succs[from], mirrorEdge{to: to, weight: weight})
	o.preds[to] = append(o.preds[to], from)
	o.edgeDelta(from, to, weight, 1)
}

func (o *observability) removeMirrorEdge(from, to NodeID) {
	list := o.succs[from]
	for i := range list {
		if list[i].to == to {
			o.edgeDelta(from, to, list[i].weight, -1)
			o.succs[from] = append(list[:i], list[i+1:]...)
			break
		}
	}
	plist := o.preds[to]
	for i := range plist {
		if plist[i] == from {
			o.preds[to] = append(plist[:i], plist[i+1:]...)
			break
		}
	}
}

func (o *observability) noteInsert(op *InsertOp) {
	if _, ok := o.succs[op.Rec.ID]; !ok {
		o.succs[op.Rec.ID] = nil
	}
	for _, s := range op.Rec.Succs {
		o.addMirrorEdge(op.Rec.ID, s.To, float64(s.Cost))
	}
	for i, p := range op.Rec.Preds {
		o.addMirrorEdge(p, op.Rec.ID, float64(op.PredCosts[i]))
	}
}

func (o *observability) noteDelete(id NodeID) {
	for _, e := range o.succs[id] {
		o.edgeDelta(id, e.to, e.weight, -1)
		plist := o.preds[e.to]
		for i := range plist {
			if plist[i] == id {
				o.preds[e.to] = append(plist[:i], plist[i+1:]...)
				break
			}
		}
	}
	for _, p := range o.preds[id] {
		list := o.succs[p]
		for i := range list {
			if list[i].to == id {
				o.edgeDelta(p, id, list[i].weight, -1)
				o.succs[p] = append(list[:i], list[i+1:]...)
				break
			}
		}
	}
	delete(o.succs, id)
	delete(o.preds, id)
}

// setGauges publishes CRR/WCRR from the running counters — O(1), the
// amortized replacement for the full refreshGauges pass that used to
// run after every mutation.
func (o *observability) setGauges() {
	crr, wcrr := 0.0, 0.0
	if o.total > 0 {
		crr = float64(o.unsplit) / float64(o.total)
	}
	if o.wtotal > 0 {
		wcrr = o.wunsplit / o.wtotal
	}
	o.crr.Set(crr)
	o.wcrr.Set(wcrr)
}

// setSnapshotGauges publishes the version layer's health: how far the
// oldest pinned snapshot lags the newest commit (the page-version
// retention window) and how many snapshots are pinned.
func (o *observability) setSnapshotGauges(f *netfile.File) {
	p := f.Pool()
	o.snapLag.Set(float64(p.CommittedLSN() - p.VersionFloor()))
	o.snapsActive.Set(float64(p.ActiveSnapshots()))
}

// gaugeCRR returns the current unweighted CRR from the running
// counters (1 for an edgeless file, matching the gauges' build state).
func (o *observability) gaugeCRR() float64 {
	if o.total == 0 {
		return 1
	}
	return float64(o.unsplit) / float64(o.total)
}

// worstPages returns up to n pages ranked by split (cross-page) edge
// count, worst first — the background reorganizer's target list. Pages
// with no split edges are never returned.
func (o *observability) worstPages(n int) []storage.PageID {
	type cand struct {
		pid   storage.PageID
		split int64
	}
	cands := make([]cand, 0, len(o.pageTally))
	for pid, t := range o.pageTally {
		if t.split > 0 {
			cands = append(cands, cand{pid, t.split})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].split != cands[j].split {
			return cands[i].split > cands[j].split
		}
		return cands[i].pid < cands[j].pid
	})
	if len(cands) > n {
		cands = cands[:n]
	}
	out := make([]storage.PageID, len(cands))
	for i, c := range cands {
		out[i] = c.pid
	}
	return out
}

// refreshGauges rebuilds the place map and the running counters from
// the mirror and the file's current placement, then publishes the
// gauges. The placement comes from the node index, which the paper
// treats as memory resident, so this charges no data-page I/O. It runs
// at build/open time; per-mutation upkeep is incremental (edgeDelta /
// applyPlaceEvents) and publishes through setGauges.
func (o *observability) refreshGauges(f *netfile.File) {
	o.place = f.Placement()
	o.total, o.unsplit = 0, 0
	o.wtotal, o.wunsplit = 0, 0
	o.pageTally = make(map[storage.PageID]*pageCounters)
	for from, list := range o.succs {
		for _, e := range list {
			o.edgeDelta(from, e.to, e.weight, 1)
		}
	}
	o.setGauges()
}

// --- public accessors ---

// Metrics returns the store's metrics registry, or nil when metrics are
// disabled. The registry renders itself as Prometheus text via WriteTo
// and as expvar-compatible JSON via String.
func (s *Store) Metrics() *Registry {
	if s.obs == nil {
		return nil
	}
	return s.obs.reg
}

// Tracer returns the store's operation tracer, or nil when tracing is
// disabled.
func (s *Store) Tracer() *Tracer { return s.tracer }

// Traces returns up to n recent operation traces, newest first; nil
// when tracing is disabled.
func (s *Store) Traces(n int) []Trace {
	if s.tracer == nil {
		return nil
	}
	return s.tracer.Recent(n)
}

// PublishExpvar publishes the store's registry under name in the
// process-wide expvar namespace (so it appears at /debug/vars). It is a
// no-op when metrics are disabled. expvar panics on duplicate names, so
// publish each store at most once.
func (s *Store) PublishExpvar(name string) {
	if r := s.Metrics(); r != nil {
		expvar.Publish(name, r)
	}
}

// MetricsHandler returns an http.Handler that serves the store's
// metrics in the Prometheus text exposition format. A store without
// metrics serves an empty document.
func (s *Store) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg := s.Metrics()
		if reg == nil {
			return
		}
		reg.WriteTo(w)
	})
}

// ServeMetrics registers the store's observability endpoints on mux
// (nil selects http.DefaultServeMux): /metrics serves the Prometheus
// text format, /metrics.json the expvar-compatible JSON view, and
// /traces a human-readable dump of recent operation traces. /traces
// accepts ?limit=N (cap the dump), ?trace=<hex id> (only the traces
// tagged with that wire trace id) and ?op=<name> (only that
// operation), so a full 128-entry ring is never dumped unconditionally
// and "what did request 0xABCD do" is one GET.
func ServeMetrics(mux *http.ServeMux, s *Store) {
	if mux == nil {
		mux = http.DefaultServeMux
	}
	mux.Handle("/metrics", s.MetricsHandler())
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if reg := s.Metrics(); reg != nil {
			w.Write([]byte(reg.String()))
		} else {
			w.Write([]byte("{}"))
		}
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		tr := s.Tracer()
		if tr == nil {
			return
		}
		q := r.URL.Query()
		n := tr.Capacity()
		if v := q.Get("limit"); v != "" {
			lim, err := strconv.Atoi(v)
			if err != nil || lim < 0 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			if lim < n {
				n = lim
			}
		}
		var f metrics.TraceFilter
		if v := q.Get("trace"); v != "" {
			id, err := strconv.ParseUint(v, 16, 64)
			if err != nil || id == 0 {
				http.Error(w, "bad trace id (want hex)", http.StatusBadRequest)
				return
			}
			f.TraceID = id
		}
		f.Op = q.Get("op")
		metrics.WriteTraces(w, tr.Select(n, f))
	})
}
