//go:build race

package ccam

// raceEnabled reports whether the race detector instruments this
// build; timing-sensitive assertions (group-commit coalescing) relax
// under its overhead.
const raceEnabled = true
