module ccam

go 1.22
