package ccam

// This file holds one testing.B benchmark per table and figure of the
// paper's evaluation (Section 4) plus the repository's ablations and a
// set of micro-benchmarks of the individual operations. The experiment
// benchmarks drive the harness in internal/bench at paper scale and
// report the headline numbers via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates every result. cmd/ccam-bench prints the full tables.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ccam/internal/bench"
	iccam "ccam/internal/ccam"
	"ccam/internal/netfile"
	"ccam/internal/storage"
)

func paperSetup() bench.Setup { return bench.DefaultSetup() }

// BenchmarkFig5CRRByBlockSize regenerates Figure 5: CRR per access
// method per disk block size. The reported metric is CCAM-S's CRR at
// the 1k block.
func BenchmarkFig5CRRByBlockSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig5(bench.Fig5Config{Setup: paperSetup()})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CRR["ccam-s"][1024], "ccam-s-crr@1k")
		b.ReportMetric(res.CRR["bfs-am"][1024], "bfs-am-crr@1k")
	}
}

// BenchmarkTable5NetworkOps regenerates Table 5: the I/O cost of the
// network operations. Reported metrics are CCAM's actual page accesses
// per operation.
func BenchmarkTable5NetworkOps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTable5(bench.Table5Config{Setup: paperSetup()})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Method == "ccam-s" {
				b.ReportMetric(row.GetSuccsActual, "get-succs-pages")
				b.ReportMetric(row.GetASuccActual, "get-a-succ-pages")
				b.ReportMetric(row.DeleteActual, "delete-pages")
				b.ReportMetric(row.InsertActual, "insert-pages")
			}
		}
	}
}

// BenchmarkFig6RouteEvaluation regenerates Figure 6: route evaluation
// I/O versus route length. The reported metric is CCAM-S's average
// pages per route at L = 40.
func BenchmarkFig6RouteEvaluation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig6(bench.Fig6Config{Setup: paperSetup()})
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.RouteLengths) - 1
		b.ReportMetric(res.PagesPerRoute["ccam-s"][last], "ccam-s-pages@L40")
		b.ReportMetric(res.PagesPerRoute["bfs-am"][last], "bfs-am-pages@L40")
	}
}

// BenchmarkFig7ReorgPolicies regenerates Figure 7: per-insert I/O and
// CRR under the three reorganization policies. Reported metrics are
// the final average I/O per insert of the second- and higher-order
// policies.
func BenchmarkFig7ReorgPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig7(bench.Fig7Config{Setup: paperSetup()})
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range res.Series {
			last := len(s.AvgIO) - 1
			switch s.Policy {
			case netfile.SecondOrder:
				b.ReportMetric(s.AvgIO[last], "second-order-io")
				b.ReportMetric(s.CRR[last], "second-order-crr")
			case netfile.HigherOrder:
				b.ReportMetric(s.AvgIO[last], "higher-order-io")
			}
		}
	}
}

// BenchmarkAblationPartitioners compares the partitioning heuristics
// (ablation A1).
func BenchmarkAblationPartitioners(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunAblationPartitioners(paperSetup(), 1024)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Name == "ratio-cut" {
				b.ReportMetric(row.CRR, "ratio-cut-crr")
			}
		}
	}
}

// BenchmarkAblationBufferSweep sweeps the route-evaluation buffer pool
// (ablation A2).
func BenchmarkAblationBufferSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunAblationBufferSweep(paperSetup())
		if err != nil {
			b.Fatal(err)
		}
		s := res.PagesPerRoute["ccam-s"]
		b.ReportMetric(s[0], "pool1-pages")
		b.ReportMetric(s[len(s)-1], "pool16-pages")
	}
}

// BenchmarkAblationScale sweeps the network size (ablation A3). Kept
// to 4k nodes so the benchmark suite stays fast; cmd/ccam-bench runs
// the 16k point.
func BenchmarkAblationScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunAblationScale(paperSetup(), []int{256, 1024, 4096})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CRR["ccam-s"][len(res.Sizes)-1], "ccam-s-crr@4k-nodes")
	}
}

// --- micro-benchmarks of the public API ---

func benchStore(b *testing.B) (*Store, *Network) {
	b.Helper()
	g, err := RoadMap(MinneapolisLikeOpts())
	if err != nil {
		b.Fatal(err)
	}
	s, err := Open(Options{PageSize: 2048, PoolPages: 16, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Build(g); err != nil {
		b.Fatal(err)
	}
	return s, g
}

// BenchmarkBuildStatic measures the CCAM-S create over the paper-scale
// map.
func BenchmarkBuildStatic(b *testing.B) {
	g, err := RoadMap(MinneapolisLikeOpts())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(Options{PageSize: 2048, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Build(g); err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}

// BenchmarkBuildDynamic measures the CCAM-D incremental create.
func BenchmarkBuildDynamic(b *testing.B) {
	g, err := RoadMap(MinneapolisLikeOpts())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(Options{PageSize: 2048, Seed: int64(i), Dynamic: true})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Build(g); err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}

// BenchmarkFind measures point lookups with metrics disabled (the
// default). Compare BenchmarkFindInstrumented: the allocs/op of the
// two must match, since the disabled path is one nil check.
func BenchmarkFind(b *testing.B) {
	s, g := benchStore(b)
	defer s.Close()
	ids := g.NodeIDs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Find(context.Background(), ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFindChecked measures the same point lookups through a
// CheckedStore: every physical data-page read pays a CRC32-C
// verification (hardware-accelerated Castagnoli). The acceptance bar
// for the integrity layer is ns/op within 10% of BenchmarkFind.
func BenchmarkFindChecked(b *testing.B) {
	g, err := RoadMap(MinneapolisLikeOpts())
	if err != nil {
		b.Fatal(err)
	}
	cs, err := storage.NewCheckedStore(storage.NewMemStore(2048 + storage.ChecksumTrailerLen))
	if err != nil {
		b.Fatal(err)
	}
	m, err := iccam.New(iccam.Config{PageSize: cs.PageSize(), PoolPages: 16, Seed: 1, Store: cs})
	if err != nil {
		b.Fatal(err)
	}
	s := &Store{m: m}
	defer s.Close()
	if err := s.Build(g); err != nil {
		b.Fatal(err)
	}
	ids := g.NodeIDs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Find(context.Background(), ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFindInstrumented measures the same point lookups on a store
// with metrics and tracing enabled, pricing the observability layer:
// the ns/op delta against BenchmarkFind is the full per-operation cost
// of counters, latency histogram, I/O attribution and the trace ring.
func BenchmarkFindInstrumented(b *testing.B) {
	g, err := RoadMap(MinneapolisLikeOpts())
	if err != nil {
		b.Fatal(err)
	}
	s, err := OpenWith(WithPageSize(2048), WithPoolPages(16), WithSeed(1),
		WithMetrics(), WithTracing(64))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if err := s.Build(g); err != nil {
		b.Fatal(err)
	}
	ids := g.NodeIDs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Find(context.Background(), ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetSuccessors measures adjacency retrieval.
func BenchmarkGetSuccessors(b *testing.B) {
	s, g := benchStore(b)
	defer s.Close()
	ids := g.NodeIDs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.GetSuccessors(context.Background(), ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateRoute measures a 20-hop route evaluation.
func BenchmarkEvaluateRoute(b *testing.B) {
	s, g := benchStore(b)
	defer s.Close()
	rng := rand.New(rand.NewSource(8))
	routes, err := RandomWalkRoutes(g, 64, 20, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.EvaluateRoute(context.Background(), routes[i%len(routes)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRangeQuery measures a 10%-of-map window query.
func BenchmarkRangeQuery(b *testing.B) {
	s, g := benchStore(b)
	defer s.Close()
	bb := g.Bounds()
	window := NewRect(
		Point{X: bb.Min.X + bb.Width()*0.45, Y: bb.Min.Y + bb.Height()*0.45},
		Point{X: bb.Min.X + bb.Width()*0.55, Y: bb.Min.Y + bb.Height()*0.55},
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.RangeQuery(context.Background(), window); err != nil {
			b.Fatal(err)
		}
	}
}

// benchReadLatency is the simulated per-page-read disk time of the
// throughput benchmarks: enough that I/O dominates (the paper's
// disk-resident regime) while keeping runs short.
const benchReadLatency = 100 * time.Microsecond

// ioBoundStore builds a paper-scale store over a simulated disk that
// charges benchReadLatency per physical page read, with a pool small
// enough that lookups miss. In this regime concurrency buys
// throughput by overlapping I/O waits, exactly as on a real disk.
func ioBoundStore(b *testing.B, parallelism int) (*Store, *Network) {
	b.Helper()
	g, err := RoadMap(MinneapolisLikeOpts())
	if err != nil {
		b.Fatal(err)
	}
	s, err := Open(Options{
		PageSize:    2048,
		PoolPages:   32,
		Seed:        1,
		Parallelism: parallelism,
		ReadLatency: benchReadLatency,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Build(g); err != nil {
		b.Fatal(err)
	}
	return s, g
}

// BenchmarkConcurrentFind measures point-lookup throughput on the
// simulated disk with the benchmark's goroutines sharing the store's
// read latch. Run with -cpu 1,2,4,8 to sweep the reader count: misses
// release the buffer-pool latch during the physical read, so N readers
// overlap N page waits and throughput scales until the pool or the
// medium saturates. Compare BenchmarkFind for the in-memory
// (CPU-bound) baseline.
func BenchmarkConcurrentFind(b *testing.B) {
	s, g := ioBoundStore(b, 0)
	defer s.Close()
	ids := g.NodeIDs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(int64(b.N)))
		for pb.Next() {
			if _, err := s.Find(context.Background(), ids[rng.Intn(len(ids))]); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkEvaluateRoutesParallel measures the batch route-evaluation
// API on the simulated disk: each iteration fans 64 20-hop routes
// across the worker pool, sweeping Options.Parallelism. The
// workers=1/workers=8 ns-per-op ratio is the concurrency speedup;
// because the workload is I/O-bound it does not require 8 CPUs.
func BenchmarkEvaluateRoutesParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s, g := ioBoundStore(b, workers)
			defer s.Close()
			rng := rand.New(rand.NewSource(8))
			routes, err := RandomWalkRoutes(g, 64, 20, rng)
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.EvaluateRoutes(ctx, routes); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(routes)), "routes/op")
		})
	}
}

// BenchmarkInsertDeleteSecondOrder measures a node delete+insert round
// trip under the second-order policy.
func BenchmarkInsertDeleteSecondOrder(b *testing.B) {
	s, g := benchStore(b)
	defer s.Close()
	ids := g.NodeIDs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := ids[i%len(ids)]
		op, err := InsertOpFromNode(g, id)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Delete(id, SecondOrder); err != nil {
			b.Fatal(err)
		}
		if err := s.Insert(op, SecondOrder); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSetEdgeCost measures the IVHS travel-time update.
func BenchmarkSetEdgeCost(b *testing.B) {
	s, g := benchStore(b)
	defer s.Close()
	edges := g.Edges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := edges[i%len(edges)]
		if err := s.SetEdgeCost(e.From, e.To, float32(e.Cost)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateRouteUnit measures an aggregate query over a
// 20-segment route-unit (e.g. comparing bus-route ridership).
func BenchmarkEvaluateRouteUnit(b *testing.B) {
	s, g := benchStore(b)
	defer s.Close()
	rng := rand.New(rand.NewSource(12))
	routes, err := RandomWalkRoutes(g, 8, 21, rng)
	if err != nil {
		b.Fatal(err)
	}
	units := make([][][2]NodeID, len(routes))
	for i, r := range routes {
		for j := 0; j+1 < len(r); j++ {
			units[i] = append(units[i], [2]NodeID{r[j], r[j+1]})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.EvaluateRouteUnit("u", units[i%len(units)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShortestPathAStar measures a file-resident A* query.
func BenchmarkShortestPathAStar(b *testing.B) {
	s, g := benchStore(b)
	defer s.Close()
	ids := g.NodeIDs()
	rng := rand.New(rand.NewSource(13))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, dst := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
		if _, err := s.ShortestPathAStar(src, dst, 0.8); err != nil && !errors.Is(err, ErrNoPath) {
			b.Fatal(err)
		}
	}
}

// BenchmarkNearest measures k-nearest-neighbor queries through the
// Z-order index.
func BenchmarkNearest(b *testing.B) {
	s, g := benchStore(b)
	defer s.Close()
	bb := g.Bounds()
	rng := rand.New(rand.NewSource(14))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := Point{X: bb.Min.X + rng.Float64()*bb.Width(), Y: bb.Min.Y + rng.Float64()*bb.Height()}
		if _, err := s.Nearest(p, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSearchPaths runs the graph-search comparison
// (ablation A4).
func BenchmarkAblationSearchPaths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunSearchPaths(bench.SearchPathsConfig{Setup: paperSetup(), Pairs: 25})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.DijkstraReads["ccam-s"], "ccam-dijkstra-reads")
		b.ReportMetric(res.AStarReads["ccam-s"], "ccam-astar-reads")
	}
}

// BenchmarkAblationLazyPolicy runs the delayed-reorganization
// comparison (ablation A5).
func BenchmarkAblationLazyPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig7(bench.Fig7Config{
			Setup:     paperSetup(),
			Policies:  []netfile.Policy{netfile.FirstOrder, netfile.Lazy},
			LazyEvery: 4,
			Points:    4,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range res.Series {
			if s.Policy == netfile.Lazy {
				b.ReportMetric(s.AvgIO[len(s.AvgIO)-1], "lazy-io")
				b.ReportMetric(s.CRR[len(s.CRR)-1], "lazy-crr")
			}
		}
	}
}

// BenchmarkAblationTopology runs the network-family comparison
// (ablation A6).
func BenchmarkAblationTopology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunAblationTopology(paperSetup())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CRR["radial-city"]["ccam-s"], "radial-ccam-crr")
		b.ReportMetric(res.CRR["random-geometric"]["ccam-s"], "geo-ccam-crr")
	}
}

// BenchmarkAblationMixedWorkload runs the query/update mix (ablation
// A7), shortened to 200 operations per fraction.
func BenchmarkAblationMixedWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunMixedWorkload(bench.MixedConfig{
			Setup: paperSetup(), Ops: 200, UpdateFracs: []float64{0, 0.3},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PagesPerOp["ccam-s"][1], "ccam-pages-per-op@30pct")
	}
}

// BenchmarkAblationSpatialOrder runs the proximity-ordering comparison
// (ablation A8).
func BenchmarkAblationSpatialOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunAblationSpatialOrder(paperSetup())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CRR["hilbert-am"][1024], "hilbert-crr@1k")
		b.ReportMetric(res.CRR["zcurve-am"][1024], "zcurve-crr@1k")
	}
}
