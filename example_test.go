package ccam_test

import (
	"context"
	"fmt"
	"log"

	"ccam"
)

// Example builds a small network, stores it connectivity-clustered, and
// runs the paper's route evaluation query.
func Example() {
	net := ccam.NewNetwork()
	for i, pos := range []ccam.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 200, Y: 0}} {
		if err := net.AddNode(ccam.Node{ID: ccam.NodeID(i + 1), Pos: pos}); err != nil {
			log.Fatal(err)
		}
	}
	net.AddEdge(ccam.Edge{From: 1, To: 2, Cost: 30, Weight: 1})
	net.AddEdge(ccam.Edge{From: 2, To: 3, Cost: 45, Weight: 1})

	store, err := ccam.Open(ccam.Options{PageSize: 512})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	if err := store.Build(net); err != nil {
		log.Fatal(err)
	}

	agg, err := store.EvaluateRoute(context.Background(), ccam.Route{1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("route over %d nodes costs %.0f\n", agg.Nodes, agg.TotalCost)
	// Output: route over 3 nodes costs 75
}

// ExampleStore_GetSuccessors shows the adjacency retrieval operation
// behind graph searches.
func ExampleStore_GetSuccessors() {
	net := ccam.NewNetwork()
	for i := 1; i <= 4; i++ {
		net.AddNode(ccam.Node{ID: ccam.NodeID(i)})
	}
	net.AddEdge(ccam.Edge{From: 1, To: 2, Cost: 1, Weight: 1})
	net.AddEdge(ccam.Edge{From: 1, To: 3, Cost: 2, Weight: 1})
	net.AddEdge(ccam.Edge{From: 4, To: 1, Cost: 3, Weight: 1})

	store, err := ccam.Open(ccam.Options{PageSize: 512})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	if err := store.Build(net); err != nil {
		log.Fatal(err)
	}

	succs, err := store.GetSuccessors(context.Background(), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 1 has %d successors\n", len(succs))
	// Output: node 1 has 2 successors
}

// ExampleStore_EvaluateRouteUnit aggregates over a named collection of
// arcs — the paper's bus-route scenario.
func ExampleStore_EvaluateRouteUnit() {
	net := ccam.NewNetwork()
	for i := 1; i <= 4; i++ {
		net.AddNode(ccam.Node{ID: ccam.NodeID(i)})
	}
	// A bus route along 1 -> 2 -> 3 -> 4.
	net.AddEdge(ccam.Edge{From: 1, To: 2, Cost: 10, Weight: 1})
	net.AddEdge(ccam.Edge{From: 2, To: 3, Cost: 20, Weight: 1})
	net.AddEdge(ccam.Edge{From: 3, To: 4, Cost: 30, Weight: 1})

	store, err := ccam.Open(ccam.Options{PageSize: 512})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	if err := store.Build(net); err != nil {
		log.Fatal(err)
	}

	agg, err := store.EvaluateRouteUnit("bus-9", [][2]ccam.NodeID{{1, 2}, {2, 3}, {3, 4}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d segments, total %.0f\n", agg.Name, agg.Edges, agg.TotalCost)
	// Output: bus-9: 3 segments, total 60
}
